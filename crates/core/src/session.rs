//! The analysis session: hash-consed regions and predicates, memoized
//! lattice queries, and deterministic synthetic-name management.
//!
//! The data-flow lattice operations (`is_empty`, `subset_of`,
//! `subtract`, `intersect`, `union`, `project_out`, predicate
//! implication) are pure functions of their operands and the session's
//! [`Options`]. The analysis evaluates them over a small population of
//! recurring values — the same loop regions reappear in every `seq`
//! composition, every `normalize` pass, and every dependence pair — so
//! an [`AnalysisSession`] interns operands into `Arc` handles with
//! stable `u32` ids and memoizes each query on those ids.
//!
//! The interners and memo tables are lock-striped ([`crate::shard`]):
//! the hot `sys_empty` path is ~90% of all queries, and with one global
//! mutex per table every worker serialized on it.
//!
//! ## Determinism
//!
//! The session is shared (`&AnalysisSession` is `Sync`) across the
//! worker threads of the parallel driver — both the per-procedure
//! level driver and the intra-procedure fan-out
//! ([`crate::pool::par_map`]). Three properties keep the analysis
//! output bit-identical regardless of worker count:
//!
//! 1. Memo keys are *structural*: a cached result is only returned for
//!    operands equal (including constraint order) to those of the
//!    original computation, and the operations are deterministic pure
//!    functions — so a cache hit returns exactly what a fresh
//!    computation would. (Interned ids are schedule-dependent, but they
//!    never reach the output: they only key memo entries.)
//! 2. `Var` ordering is intern-index order and seeps into constraint
//!    sorting and Fourier–Motzkin tie-breaks. [`pre_intern`] interns
//!    every synthetic name the analysis can create (dimension variables,
//!    step-lattice counters, `$prev.*`, primed copies) in a
//!    single-threaded pass over the program *before* workers start, so
//!    concurrent first-interning can never reorder them.
//! 3. Lattice existentials (`$lat.*`) are drawn from a per-procedure
//!    counter ([`lat_var`]) instead of a global fresh counter. Only
//!    strided loops ever request them, and the driver disables
//!    statement- and summary-level fan-out inside procedures containing
//!    a strided loop, so the k-th request in a procedure always comes
//!    from the same (single) thread in the same order.
//!
//! [`pre_intern`]: AnalysisSession::pre_intern
//! [`lat_var`]: AnalysisSession::lat_var

use crate::budget;
use crate::metrics::{Histogram, MetricsRegistry, QueryKind};
use crate::options::Options;
use crate::pool::WorkerTokens;
use crate::shard::{Interner, Memo};
use crate::store::{self, Store, StoreStatsSnapshot};
use crate::trace;
use padfa_ir::ast::{Block, ParamTy, Procedure, Program, Stmt};
use padfa_omega::sync::lock;
use padfa_omega::{dense, Disjunction, Limits, System, Tier, Var};
use padfa_pred::Pred;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Pre-interned `$lat.<proc>.<k>` names per strided procedure; requests
/// beyond the pool fall back to on-the-fly interning (counted in
/// [`StatsSnapshot::lat_overflow`]).
const LAT_POOL: u32 = 256;

/// Hit/miss counters for one memoized query, split by the
/// representation tier that answered it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryStats {
    pub hits: u64,
    pub misses: u64,
    /// Queries answered by the dense fast tier
    /// ([`padfa_omega::Tier::Dense`]). Memo and store hits replay the
    /// tier recorded by the original computation, so the split covers
    /// every query, not just misses.
    pub dense: u64,
    /// Queries answered by the general Fourier–Motzkin representation.
    pub general: u64,
}

impl QueryStats {
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of queries served from the memo table (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Fraction of queries the dense tier answered (0 when unused).
    pub fn dense_rate(&self) -> f64 {
        let t = self.dense + self.general;
        if t == 0 {
            0.0
        } else {
            self.dense as f64 / t as f64
        }
    }
}

/// A point-in-time snapshot of the session's counters, attached to
/// [`crate::report::AnalysisResult`] and serialized by the benchmarks.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StatsSnapshot {
    pub sys_empty: QueryStats,
    pub subset: QueryStats,
    pub subtract: QueryStats,
    pub intersect: QueryStats,
    pub union: QueryStats,
    pub project: QueryStats,
    pub implies: QueryStats,
    /// Distinct interned systems / regions / predicates.
    pub interned_systems: usize,
    pub interned_regions: usize,
    pub interned_preds: usize,
    /// Peak memo-table entry count across all tables (tables only grow,
    /// so the snapshot value is the peak).
    pub peak_table_entries: usize,
    /// Fourier–Motzkin projection computations actually run (memoized
    /// projection misses; hits avoid these entirely).
    pub fm_projections: u64,
    /// `$lat` requests beyond the pre-interned per-procedure pool.
    pub lat_overflow: u64,
    /// Lattice-operation steps charged against per-procedure work
    /// budgets, summed over all procedures (0 when unbudgeted).
    pub budget_steps: u64,
    /// Peak disjunct count seen in any budgeted lattice operand.
    pub peak_disjuncts: usize,
    /// Peak constraint count seen in any system of a budgeted operand.
    pub peak_constraints: usize,
    /// Procedures whose summary was replaced by the degraded
    /// conservative summary after budget exhaustion.
    pub degraded_procs: u64,
    /// `Limits` overflow events (capped eliminations / disjunct-cap
    /// fallbacks) observed during this session, from the process-wide
    /// counter ([`padfa_omega::limit_stats`]). Approximate when several
    /// sessions run concurrently in one process.
    pub limit_overflows: u64,
    /// Persistent-store counters (`None` when no store is attached).
    pub store: Option<StoreStatsSnapshot>,
    /// Task-scheduler decisions (spawn vs inline per fan-out site) and
    /// the estimate-vs-actual cost correlation.
    pub sched: crate::sched::SchedSnapshot,
}

impl StatsSnapshot {
    fn tables(&self) -> [(&'static str, QueryStats); 7] {
        [
            ("sys_empty", self.sys_empty),
            ("subset", self.subset),
            ("subtract", self.subtract),
            ("intersect", self.intersect),
            ("union", self.union),
            ("project", self.project),
            ("implies", self.implies),
        ]
    }

    pub fn total_hits(&self) -> u64 {
        self.tables().iter().map(|(_, q)| q.hits).sum()
    }

    pub fn total_queries(&self) -> u64 {
        self.tables().iter().map(|(_, q)| q.total()).sum()
    }

    /// Total queries answered by the dense tier, across every kind.
    pub fn total_dense(&self) -> u64 {
        self.tables().iter().map(|(_, q)| q.dense).sum()
    }

    /// Fraction of tiered queries the dense tier answered, across every
    /// kind (0 when nothing was tiered).
    pub fn tier_hit_rate(&self) -> f64 {
        let tiered: u64 = self.tables().iter().map(|(_, q)| q.dense + q.general).sum();
        if tiered == 0 {
            0.0
        } else {
            self.total_dense() as f64 / tiered as f64
        }
    }

    /// Overall memo hit rate across every query kind.
    pub fn hit_rate(&self) -> f64 {
        let t = self.total_queries();
        if t == 0 {
            0.0
        } else {
            self.total_hits() as f64 / t as f64
        }
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "session: {} queries, {:.1}% memo hits; {} systems / {} regions / {} preds interned",
            self.total_queries(),
            100.0 * self.hit_rate(),
            self.interned_systems,
            self.interned_regions,
            self.interned_preds,
        )?;
        for (name, q) in self.tables() {
            if q.total() > 0 {
                write!(
                    f,
                    "  {name:<10} {:>8} hits {:>8} misses ({:.1}%)",
                    q.hits,
                    q.misses,
                    100.0 * q.hit_rate()
                )?;
                if q.dense > 0 {
                    write!(
                        f,
                        " [dense {} / general {} = {:.1}% dense]",
                        q.dense,
                        q.general,
                        100.0 * q.dense_rate()
                    )?;
                }
                writeln!(f)?;
            }
        }
        let dense = self.total_dense();
        let tiered: u64 = self.tables().iter().map(|(_, q)| q.dense + q.general).sum();
        if tiered > 0 {
            writeln!(
                f,
                "  tier: {} dense / {} general ({:.1}% dense)",
                dense,
                tiered - dense,
                100.0 * dense as f64 / tiered as f64
            )?;
        }
        writeln!(
            f,
            "  fm-projections run: {}; peak table: {} entries",
            self.fm_projections, self.peak_table_entries
        )?;
        if self.sched.decisions() > 0 {
            let per_site = crate::sched::Site::ALL
                .iter()
                .map(|&s| {
                    format!(
                        "{} {}/{}",
                        s.name(),
                        self.sched.spawned[s as usize],
                        self.sched.inlined[s as usize]
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            write!(
                f,
                "  sched: {} spawned / {} inlined (threshold {}; {})",
                self.sched.spawned_total(),
                self.sched.inlined_total(),
                self.sched.threshold,
                per_site,
            )?;
            if let Some(r) = self.sched.est_corr {
                write!(f, " est-corr {r:.2}")?;
            }
            writeln!(f)?;
        }
        write!(f, "  limit overflows: {}", self.limit_overflows)?;
        if self.budget_steps > 0 {
            write!(
                f,
                "\n  budget: {} steps, peak {} disjuncts / {} constraints, {} degraded procedure(s)",
                self.budget_steps, self.peak_disjuncts, self.peak_constraints, self.degraded_procs
            )?;
        }
        if let Some(st) = &self.store {
            write!(
                f,
                "\n  store: {} hits {} misses ({:.1}% hit rate), {} puts, {} loaded",
                st.hits,
                st.misses,
                100.0 * st.hit_rate(),
                st.puts,
                st.loaded
            )?;
            if st.quarantined > 0
                || st.stale_segments > 0
                || st.salvaged > 0
                || st.invalidated > 0
                || st.retries > 0
            {
                write!(
                    f,
                    "\n  store hygiene: {} quarantined, {} stale segment(s), {} salvaged, {} invalidated, {} retried",
                    st.quarantined, st.stale_segments, st.salvaged, st.invalidated, st.retries
                )?;
            }
            if st.degraded {
                write!(f, "\n  store degraded: running in-memory only")?;
            } else if st.writes_degraded {
                write!(
                    f,
                    "\n  store degraded: persistence disabled, reads still served"
                )?;
            }
        }
        Ok(())
    }
}

/// Shared state for one analysis run: options, hash-consing interners,
/// memo tables, per-procedure `$lat` pools, and statistics. Interior
/// mutability throughout, so `&AnalysisSession` crosses thread
/// boundaries in the parallel driver.
pub struct AnalysisSession {
    pub opts: Options,
    jobs: usize,
    /// Spawnable-worker tokens for the intra-procedure fan-out
    /// ([`crate::pool::par_map`]); `jobs - 1` exist session-wide.
    tokens: WorkerTokens,
    systems: Interner<System>,
    regions: Interner<Disjunction>,
    preds: Interner<Pred>,
    m_sys_empty: Memo<u32, (bool, Tier)>,
    m_subset: Memo<(u32, u32), (bool, Tier)>,
    m_subtract: Memo<(u32, u32), Arc<Disjunction>>,
    m_intersect: Memo<(u32, u32), (Arc<Disjunction>, Tier)>,
    m_union: Memo<(u32, u32), Arc<Disjunction>>,
    m_project: Memo<(u32, Vec<Var>), Arc<Disjunction>>,
    m_implies: Memo<(u32, u32), bool>,
    /// Per-query-kind count of dense-tier answers (index =
    /// `QueryKind as usize`); the general count is the matching slot in
    /// `tier_general`. Bumped once per query *call* — memo hits replay
    /// the stored tier — so the split weights recurring queries the way
    /// the workload does.
    tier_dense: [AtomicU64; 7],
    tier_general: [AtomicU64; 7],
    fm_projections: AtomicU64,
    lat_overflow: AtomicU64,
    lat_pools: Mutex<HashMap<String, u32>>,
    budget_steps: AtomicU64,
    peak_disjuncts: AtomicUsize,
    peak_constraints: AtomicUsize,
    degraded_procs: AtomicU64,
    /// `limit_stats` baseline at session creation: `stats()` reports the
    /// difference.
    overflow_baseline: u64,
    /// Optional metrics sink: per-query latency histograms sampled on
    /// the hot path, plus the registry the final snapshot is published
    /// to. `None` costs one branch per query.
    metrics: Option<SessionMetrics>,
    /// Optional persistent memo store, consulted *inside* memo-miss
    /// closures (after budget charging), so memo statistics, budget
    /// steps, and operand peaks stay bit-identical warm vs cold.
    store: Option<SessionStore>,
    /// Cost-model task scheduler arbitrating the four fan-out sites
    /// (see [`crate::sched`]).
    sched: crate::sched::Scheduler,
}

/// A persistent store attached to this session, with the session's
/// options fingerprint pre-mixed into every key.
struct SessionStore {
    store: Arc<Store>,
    opts_fp: u128,
}

/// Pre-resolved metrics handles (no name hashing per query).
struct SessionMetrics {
    registry: Arc<MetricsRegistry>,
    latency: [Arc<Histogram>; 7],
}

impl AnalysisSession {
    pub fn new(opts: Options) -> AnalysisSession {
        // Surface the tier kill-switch in the flight ring: one instant
        // per session, so a forced-general run is attributable
        // post-hoc (per request, once trace-tagged by the service).
        if dense::force_general() {
            crate::flight::instant(
                crate::flight::EventKind::TierForcedGeneral,
                "PADFA_FORCE_GENERAL_TIER",
                1,
            );
        }
        let sched = crate::sched::Scheduler::new(opts.spawn_threshold);
        AnalysisSession {
            opts,
            jobs: 1,
            tokens: WorkerTokens::new(1),
            systems: Interner::new(),
            regions: Interner::new(),
            preds: Interner::new(),
            m_sys_empty: Memo::new(),
            m_subset: Memo::new(),
            m_subtract: Memo::new(),
            m_intersect: Memo::new(),
            m_union: Memo::new(),
            m_project: Memo::new(),
            m_implies: Memo::new(),
            tier_dense: std::array::from_fn(|_| AtomicU64::new(0)),
            tier_general: std::array::from_fn(|_| AtomicU64::new(0)),
            fm_projections: AtomicU64::new(0),
            lat_overflow: AtomicU64::new(0),
            lat_pools: Mutex::new(HashMap::new()),
            budget_steps: AtomicU64::new(0),
            peak_disjuncts: AtomicUsize::new(0),
            peak_constraints: AtomicUsize::new(0),
            degraded_procs: AtomicU64::new(0),
            overflow_baseline: padfa_omega::limit_stats::overflows(),
            metrics: None,
            store: None,
            sched,
        }
    }

    /// Attach a persistent memo store: every memo *miss* consults the
    /// store before computing, and computed results are written back.
    /// Output is bit-identical with and without the store (hits replay
    /// the recorded overflow deltas; a corrupt or failing store degrades
    /// to recomputation).
    ///
    /// Budgeted sessions ignore the attachment: a store hit skips the
    /// nested work a computation would have charged, so step accounting
    /// — and with it degradation decisions — could depend on what a
    /// previous run happened to persist.
    pub fn with_store(mut self, s: Arc<Store>) -> AnalysisSession {
        if !self.opts.budget.is_unlimited() {
            return self;
        }
        let opts_fp = store::options_fingerprint(&self.opts);
        self.store = Some(SessionStore { store: s, opts_fp });
        self
    }

    /// The attached store (for the interprocedural driver and stats).
    pub fn store(&self) -> Option<&Arc<Store>> {
        self.store.as_ref().map(|s| &s.store)
    }

    /// The session's options fingerprint, mixed into every store key.
    pub(crate) fn store_opts_fp(&self) -> Option<u128> {
        self.store.as_ref().map(|s| s.opts_fp)
    }

    /// Consult-or-compute for boolean lattice results. `key_of` appends
    /// the canonicalized operand bytes (the tag + options fingerprint
    /// are prepended here). The answering tier travels with the value:
    /// store hits replay the tier the original computation recorded, so
    /// tier counters match between warm and cold runs.
    fn store_bool(
        &self,
        tag: u8,
        key_of: impl FnOnce(&mut Vec<u8>),
        compute: impl FnOnce() -> (bool, Tier),
    ) -> (bool, Tier) {
        let Some(h) = &self.store else {
            return compute();
        };
        let key = self.store_key(h, tag, key_of);
        if let Some(v) = h.store.get_bool(key) {
            return v;
        }
        let before = padfa_omega::limit_stats::thread_overflows();
        let (v, tier) = compute();
        let delta = padfa_omega::limit_stats::thread_overflows() - before;
        h.store.put_bool(key, v, tier, delta);
        (v, tier)
    }

    /// Consult-or-compute for region-valued lattice results (see
    /// [`Self::store_bool`] for the tier replay).
    fn store_region(
        &self,
        tag: u8,
        key_of: impl FnOnce(&mut Vec<u8>),
        compute: impl FnOnce() -> (Arc<Disjunction>, Tier),
    ) -> (Arc<Disjunction>, Tier) {
        let Some(h) = &self.store else {
            return compute();
        };
        let key = self.store_key(h, tag, key_of);
        if let Some((d, tier)) = h.store.get_region(key) {
            return (self.intern_region(&d), tier);
        }
        let before = padfa_omega::limit_stats::thread_overflows();
        let (v, tier) = compute();
        let delta = padfa_omega::limit_stats::thread_overflows() - before;
        h.store.put_region(key, &v, tier, delta);
        (v, tier)
    }

    /// Credit one answered query to its tier's counter.
    #[inline]
    fn note_tier(&self, kind: QueryKind, tier: Tier) {
        match tier {
            Tier::Dense => &self.tier_dense[kind as usize],
            Tier::General => &self.tier_general[kind as usize],
        }
        .fetch_add(1, Ordering::Relaxed);
    }

    fn store_key(&self, h: &SessionStore, tag: u8, key_of: impl FnOnce(&mut Vec<u8>)) -> u128 {
        let mut buf = Vec::with_capacity(256);
        buf.push(tag);
        store::codec::put_u128(&mut buf, h.opts_fp);
        key_of(&mut buf);
        store::hash::fnv128(&buf)
    }

    /// Number of worker threads for the parallel driver (across
    /// procedures *and*, via the shared token pool, within them).
    ///
    /// The spawnable-worker pool is additionally clamped to the host's
    /// physical parallelism: oversubscribing cores cannot speed up a
    /// CPU-bound analysis and measurably slows it (thread spawns and
    /// scheduler churn), so `--jobs 4` on a single-core host runs the
    /// inline path. Output is bit-identical either way.
    pub fn with_jobs(mut self, jobs: usize) -> AnalysisSession {
        self.jobs = jobs.max(1);
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        self.tokens = WorkerTokens::new(self.jobs.min(cores));
        self
    }

    /// The session's worker-token pool (for [`crate::pool::par_map`]).
    pub(crate) fn tokens(&self) -> &WorkerTokens {
        &self.tokens
    }

    /// The session's task scheduler (spawn/inline decisions at the
    /// four fan-out sites).
    pub(crate) fn sched(&self) -> &crate::sched::Scheduler {
        &self.sched
    }

    /// Attach a metrics registry: every lattice query records a latency
    /// sample into `latency.query.<kind>`, and [`publish_metrics`]
    /// folds the final counter snapshot in.
    ///
    /// [`publish_metrics`]: AnalysisSession::publish_metrics
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> AnalysisSession {
        let latency =
            QueryKind::ALL.map(|k| registry.histogram(&format!("latency.query.{}", k.name())));
        self.metrics = Some(SessionMetrics { registry, latency });
        self
    }

    /// Start one query probe: counts the op toward the trace lattice
    /// batch and, when metrics are attached, starts a latency sample.
    #[inline]
    fn probe(&self, kind: QueryKind) -> Option<Instant> {
        trace::note_lattice_op(kind.name());
        crate::flight::note_lattice_op();
        self.metrics.as_ref().map(|_| Instant::now())
    }

    /// Finish a probe started by [`Self::probe`].
    #[inline]
    fn observe(&self, kind: QueryKind, t0: Option<Instant>) {
        if let (Some(m), Some(t0)) = (self.metrics.as_ref(), t0) {
            m.latency[kind as usize].record_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    pub fn limits(&self) -> Limits {
        self.opts.limits
    }

    /// Intern a region, returning the canonical shared handle.
    pub fn intern_region(&self, d: &Disjunction) -> Arc<Disjunction> {
        self.regions.intern(d).0
    }

    /// Memoized per-system emptiness.
    pub fn sys_is_empty(&self, s: &System) -> bool {
        // Fast paths that need no table round-trip.
        if s.is_contradiction() {
            return true;
        }
        if s.is_empty_conjunction() {
            return false;
        }
        budget::charge(1);
        let t0 = self.probe(QueryKind::SysEmpty);
        let limits = self.limits();
        let (arc, id) = self.systems.intern(s);
        let r = self.m_sys_empty.get_or(id, || {
            self.store_bool(
                b'E',
                |buf| store::codec::put_system(buf, &arc),
                || {
                    // Tier dispatch: a cached dense summary decides
                    // emptiness exactly and provably agrees with the
                    // Fourier–Motzkin cascade (see `padfa_omega::dense`).
                    if !dense::force_general() {
                        if let Some(d) = arc.dense_box() {
                            return (d.is_empty(), Tier::Dense);
                        }
                    }
                    (arc.is_empty(limits), Tier::General)
                },
            )
        });
        self.note_tier(QueryKind::SysEmpty, r.1);
        self.observe(QueryKind::SysEmpty, t0);
        r.0
    }

    /// Memoized region emptiness (every disjunct empty). Decomposing to
    /// per-system queries lets regions that share disjuncts share work.
    pub fn is_empty(&self, d: &Disjunction) -> bool {
        d.systems().iter().all(|s| self.sys_is_empty(s))
    }

    /// Memoized `a ⊆ b`.
    pub fn subset_of(&self, a: &Disjunction, b: &Disjunction) -> bool {
        budget::charge(1);
        budget::note_region(a);
        budget::note_region(b);
        let t0 = self.probe(QueryKind::Subset);
        let limits = self.limits();
        let (aa, ia) = self.regions.intern(a);
        let (ab, ib) = self.regions.intern(b);
        let r = self.m_subset.get_or((ia, ib), || {
            self.store_bool(
                b'S',
                |buf| {
                    store::codec::put_region(buf, &aa);
                    store::codec::put_region(buf, &ab);
                },
                || {
                    if !dense::force_general() {
                        if let Some(v) = aa.subset_of_dense(&ab) {
                            return (v, Tier::Dense);
                        }
                    }
                    (aa.subset_of(&ab, limits), Tier::General)
                },
            )
        });
        self.note_tier(QueryKind::Subset, r.1);
        self.observe(QueryKind::Subset, t0);
        r.0
    }

    /// Memoized region subtraction `a − b`.
    pub fn subtract(&self, a: &Disjunction, b: &Disjunction) -> Arc<Disjunction> {
        budget::charge(1);
        budget::note_region(a);
        budget::note_region(b);
        let t0 = self.probe(QueryKind::Subtract);
        let limits = self.limits();
        let (aa, ia) = self.regions.intern(a);
        let (ab, ib) = self.regions.intern(b);
        let r = self.m_subtract.get_or((ia, ib), || {
            // Subtraction always runs the general algorithm: its result
            // bytes (piece order, orientation) are only defined by it.
            self.store_region(
                b'-',
                |buf| {
                    store::codec::put_region(buf, &aa);
                    store::codec::put_region(buf, &ab);
                },
                || (self.intern_region(&aa.subtract(&ab, limits)), Tier::General),
            )
            .0
        });
        self.note_tier(QueryKind::Subtract, Tier::General);
        self.observe(QueryKind::Subtract, t0);
        r
    }

    /// Memoized region intersection.
    pub fn intersect(&self, a: &Disjunction, b: &Disjunction) -> Arc<Disjunction> {
        budget::charge(1);
        budget::note_region(a);
        budget::note_region(b);
        let t0 = self.probe(QueryKind::Intersect);
        let limits = self.limits();
        let (aa, ia) = self.regions.intern(a);
        let (ab, ib) = self.regions.intern(b);
        let r = self.m_intersect.get_or((ia, ib), || {
            self.store_region(
                b'&',
                |buf| {
                    store::codec::put_region(buf, &aa);
                    store::codec::put_region(buf, &ab);
                },
                || {
                    // Dense dispatch covers the disjoint case only: the
                    // canonical empty result is the one output shape the
                    // general algorithm is forced to produce bit-for-bit.
                    if !dense::force_general() {
                        if let Some(d) = aa.intersect_dense_empty(&ab) {
                            return (self.intern_region(&d), Tier::Dense);
                        }
                    }
                    (
                        self.intern_region(&aa.intersect(&ab, limits)),
                        Tier::General,
                    )
                },
            )
        });
        self.note_tier(QueryKind::Intersect, r.1);
        self.observe(QueryKind::Intersect, t0);
        r.0
    }

    /// Memoized region union.
    pub fn union(&self, a: &Disjunction, b: &Disjunction) -> Arc<Disjunction> {
        budget::charge(1);
        budget::note_region(a);
        budget::note_region(b);
        let t0 = self.probe(QueryKind::Union);
        let limits = self.limits();
        let (aa, ia) = self.regions.intern(a);
        let (ab, ib) = self.regions.intern(b);
        let r = self.m_union.get_or((ia, ib), || {
            self.store_region(
                b'|',
                |buf| {
                    store::codec::put_region(buf, &aa);
                    store::codec::put_region(buf, &ab);
                },
                || (self.intern_region(&aa.union(&ab, limits)), Tier::General),
            )
            .0
        });
        self.note_tier(QueryKind::Union, Tier::General);
        self.observe(QueryKind::Union, t0);
        r
    }

    /// Memoized Fourier–Motzkin projection of `vars` out of `d`.
    pub fn project_out(&self, d: &Disjunction, vars: &[Var]) -> Arc<Disjunction> {
        budget::charge(1);
        budget::note_region(d);
        let t0 = self.probe(QueryKind::Project);
        let limits = self.limits();
        let (ad, id) = self.regions.intern(d);
        let r = self.m_project.get_or((id, vars.to_vec()), || {
            self.fm_projections.fetch_add(1, Ordering::Relaxed);
            self.store_region(
                b'J',
                |buf| {
                    store::codec::put_region(buf, &ad);
                    store::codec::put_vars(buf, vars);
                },
                || {
                    (
                        self.intern_region(&ad.project_out(vars, limits)),
                        Tier::General,
                    )
                },
            )
            .0
        });
        self.note_tier(QueryKind::Project, Tier::General);
        self.observe(QueryKind::Project, t0);
        r
    }

    /// Memoized predicate implication `a ⇒ b`.
    pub fn implies(&self, a: &Pred, b: &Pred) -> bool {
        // Trivial cases stay out of the tables (they dominate call
        // counts and would drown the hit-rate signal).
        if b.is_true() || a == b {
            return true;
        }
        if a.is_false() {
            return true;
        }
        budget::charge(1);
        let t0 = self.probe(QueryKind::Implies);
        let limits = self.limits();
        let (aa, ia) = self.preds.intern(a);
        let (ab, ib) = self.preds.intern(b);
        let r = self.m_implies.get_or((ia, ib), || {
            // Predicate implication has no region operands to classify;
            // the dense tier still accelerates the System-level emptiness
            // tests inside, but attribution stays general.
            self.store_bool(
                b'I',
                |buf| {
                    store::codec::put_pred(buf, &aa);
                    store::codec::put_pred(buf, &ab);
                },
                || (aa.implies(&ab, limits), Tier::General),
            )
            .0
        });
        self.note_tier(QueryKind::Implies, Tier::General);
        self.observe(QueryKind::Implies, t0);
        r
    }

    /// Count one Fourier–Motzkin projection run outside the memoized
    /// path (system-level projections in extraction and reshape).
    pub fn note_fm_projection(&self) {
        self.fm_projections.fetch_add(1, Ordering::Relaxed);
    }

    /// The next deterministic lattice-existential name for `proc`
    /// (`$lat.<proc>.<k>`). Each procedure is analyzed by one worker, so
    /// the per-procedure counter is deterministic; names inside the
    /// pre-interned pool were interned before workers started.
    pub fn lat_var(&self, proc: &str) -> Var {
        let k = {
            let mut pools = lock(&self.lat_pools);
            let c = pools.entry(proc.to_string()).or_insert(0);
            let k = *c;
            *c += 1;
            k
        };
        if k >= LAT_POOL {
            self.lat_overflow.fetch_add(1, Ordering::Relaxed);
        }
        Var::new(&format!("$lat.{proc}.{k}"))
    }

    /// How many `$lat` requests for `proc` have fallen beyond the
    /// pre-interned pool so far. Each procedure is analyzed by exactly
    /// one worker, so deltas of this value around a loop's
    /// classification attribute overflows to that loop exactly.
    pub(crate) fn lat_overflow_for(&self, proc: &str) -> u64 {
        lock(&self.lat_pools)
            .get(proc)
            .map_or(0, |&used| u64::from(used.saturating_sub(LAT_POOL)))
    }

    /// Deterministic pre-interning prepass: intern every synthetic
    /// variable name the analysis of `prog` can create, in program
    /// order, before any worker thread runs. See the module docs for why
    /// this is required for bit-deterministic parallel output.
    pub fn pre_intern(&self, prog: &Program) {
        for proc in &prog.procedures {
            // Dimension variables for every visible array.
            for d in &proc.arrays {
                for k in 0..d.dims.len() {
                    crate::region::dim_var(d.name, k);
                }
            }
            for p in &proc.params {
                if let ParamTy::Array { dims, .. } = &p.ty {
                    for k in 0..dims.len() {
                        crate::region::dim_var(p.name, k);
                    }
                }
            }
            // Loop-index bookkeeping names.
            let mut strided = false;
            pre_intern_block(&proc.body, proc, &mut strided);
            if strided {
                for k in 0..LAT_POOL {
                    Var::new(&format!("$lat.{}.{}", proc.name, k));
                }
            }
        }
    }

    /// Fold one procedure's budget-meter report into the session
    /// counters (called by the driver after each procedure).
    pub(crate) fn note_proc_meter(&self, m: &budget::MeterReport) {
        self.budget_steps.fetch_add(m.steps, Ordering::Relaxed);
        self.peak_disjuncts
            .fetch_max(m.peak_disjuncts, Ordering::Relaxed);
        self.peak_constraints
            .fetch_max(m.peak_constraints, Ordering::Relaxed);
    }

    /// Record one budget-degraded procedure.
    pub(crate) fn note_degraded(&self) {
        self.degraded_procs.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StatsSnapshot {
        let peak = [
            self.m_sys_empty.len(),
            self.m_subset.len(),
            self.m_subtract.len(),
            self.m_intersect.len(),
            self.m_union.len(),
            self.m_project.len(),
            self.m_implies.len(),
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        let tiered = |q: QueryStats, kind: QueryKind| QueryStats {
            dense: self.tier_dense[kind as usize].load(Ordering::Relaxed),
            general: self.tier_general[kind as usize].load(Ordering::Relaxed),
            ..q
        };
        StatsSnapshot {
            sys_empty: tiered(self.m_sys_empty.counters(), QueryKind::SysEmpty),
            subset: tiered(self.m_subset.counters(), QueryKind::Subset),
            subtract: tiered(self.m_subtract.counters(), QueryKind::Subtract),
            intersect: tiered(self.m_intersect.counters(), QueryKind::Intersect),
            union: tiered(self.m_union.counters(), QueryKind::Union),
            project: tiered(self.m_project.counters(), QueryKind::Project),
            implies: tiered(self.m_implies.counters(), QueryKind::Implies),
            interned_systems: self.systems.len(),
            interned_regions: self.regions.len(),
            interned_preds: self.preds.len(),
            peak_table_entries: peak,
            fm_projections: self.fm_projections.load(Ordering::Relaxed),
            lat_overflow: self.lat_overflow.load(Ordering::Relaxed),
            budget_steps: self.budget_steps.load(Ordering::Relaxed),
            peak_disjuncts: self.peak_disjuncts.load(Ordering::Relaxed),
            peak_constraints: self.peak_constraints.load(Ordering::Relaxed),
            degraded_procs: self.degraded_procs.load(Ordering::Relaxed),
            limit_overflows: padfa_omega::limit_stats::overflows()
                .saturating_sub(self.overflow_baseline),
            store: self.store.as_ref().map(|s| s.store.stats()),
            sched: self.sched.snapshot(),
        }
    }

    /// Fold the final [`StatsSnapshot`] into the attached metrics
    /// registry (no-op without one). Counter names follow
    /// `memo.<kind>.hits|misses`, `query.<kind>.total`, plus structural
    /// and budget counters; see [`crate::metrics`] for which of them are
    /// jobs-deterministic.
    pub fn publish_metrics(&self) {
        let Some(m) = &self.metrics else { return };
        let st = self.stats();
        let reg = &m.registry;
        let kinds: [(QueryKind, QueryStats); 7] = [
            (QueryKind::SysEmpty, st.sys_empty),
            (QueryKind::Subset, st.subset),
            (QueryKind::Subtract, st.subtract),
            (QueryKind::Intersect, st.intersect),
            (QueryKind::Union, st.union),
            (QueryKind::Project, st.project),
            (QueryKind::Implies, st.implies),
        ];
        for (k, q) in kinds {
            reg.counter(&format!("memo.{}.hits", k.name())).set(q.hits);
            reg.counter(&format!("memo.{}.misses", k.name()))
                .set(q.misses);
            reg.counter(&format!("query.{}.total", k.name()))
                .set(q.total());
            // `tier.*` counters are jobs-racy (which of two equal
            // systems wins the intern race decides whose dense cache
            // answers), so `deterministic_counters` filters the prefix.
            reg.counter(&format!("tier.{}.dense", k.name()))
                .set(q.dense);
            reg.counter(&format!("tier.{}.general", k.name()))
                .set(q.general);
        }
        reg.counter("fm.projections").set(st.fm_projections);
        reg.counter("interned.systems")
            .set(st.interned_systems as u64);
        reg.counter("interned.regions")
            .set(st.interned_regions as u64);
        reg.counter("interned.preds").set(st.interned_preds as u64);
        reg.counter("peak.table_entries")
            .set(st.peak_table_entries as u64);
        reg.counter("budget.steps").set(st.budget_steps);
        reg.counter("peak.disjuncts").set(st.peak_disjuncts as u64);
        reg.counter("peak.constraints")
            .set(st.peak_constraints as u64);
        reg.counter("degraded.procs").set(st.degraded_procs);
        reg.counter("lat.overflow").set(st.lat_overflow);
        reg.counter("limit.overflows").set(st.limit_overflows);
        // Spawn/inline decisions are pure in (estimate, threshold), so
        // these counters are jobs-deterministic. The estimate-vs-actual
        // correlation is timing-derived and intentionally *not*
        // published as a counter.
        for s in crate::sched::Site::ALL {
            reg.counter(&format!("sched.spawned.{}", s.name()))
                .set(st.sched.spawned[s as usize]);
            reg.counter(&format!("sched.inlined.{}", s.name()))
                .set(st.sched.inlined[s as usize]);
        }
        if let Some(s) = &st.store {
            reg.counter("store.hits").set(s.hits);
            reg.counter("store.misses").set(s.misses);
            reg.counter("store.puts").set(s.puts);
            reg.counter("store.quarantined").set(s.quarantined);
            reg.counter("store.stale_segments").set(s.stale_segments);
            reg.counter("store.salvaged").set(s.salvaged);
            reg.counter("store.invalidated").set(s.invalidated);
            reg.counter("store.loaded").set(s.loaded);
            reg.counter("store.retries").set(s.retries);
            reg.counter("store.degraded").set(u64::from(s.degraded));
            reg.counter("store.writes_degraded")
                .set(u64::from(s.writes_degraded));
        }
    }
}

/// Walk a block interning the per-loop synthetic names `handle_loop` and
/// `test_loop` will request: the primed index, the `$prev` copy, and —
/// for strided loops — the step-lattice counter with its primed and
/// `$prev` variants.
fn pre_intern_block(b: &Block, proc: &Procedure, strided: &mut bool) {
    for s in &b.stmts {
        match s {
            Stmt::For(l) => {
                crate::region::primed(l.var);
                Var::new(&format!("$prev.{}", l.var.name()));
                if l.step.abs() > 1 {
                    *strided = true;
                    let t = Var::new(&format!("$step.{}.{}", proc.name, l.var.name()));
                    crate::region::primed(t);
                    Var::new(&format!("$prev.{}", t.name()));
                }
                pre_intern_block(&l.body, proc, strided);
            }
            Stmt::If {
                then_blk, else_blk, ..
            } => {
                pre_intern_block(then_blk, proc, strided);
                pre_intern_block(else_blk, proc, strided);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_omega::{Constraint, LinExpr};

    fn interval(var: &str, lo: i64, hi: i64) -> Disjunction {
        let v = Var::new(var);
        Disjunction::from_system(System::from_constraints([
            Constraint::geq(LinExpr::var(v), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(v), LinExpr::constant(hi)),
        ]))
    }

    #[test]
    fn interning_dedups_equal_regions() {
        let sess = AnalysisSession::new(Options::predicated());
        let a = sess.intern_region(&interval("d", 1, 10));
        let b = sess.intern_region(&interval("d", 1, 10));
        assert!(Arc::ptr_eq(&a, &b));
        let c = sess.intern_region(&interval("d", 1, 11));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(sess.stats().interned_regions, 2);
    }

    #[test]
    fn memoized_queries_hit_on_repeat() {
        let sess = AnalysisSession::new(Options::predicated());
        let a = interval("d", 1, 10);
        let b = interval("d", 5, 20);
        let r1 = sess.subtract(&a, &b);
        let r2 = sess.subtract(&a, &b);
        assert!(Arc::ptr_eq(&r1, &r2));
        let st = sess.stats();
        assert_eq!(st.subtract.hits, 1);
        assert_eq!(st.subtract.misses, 1);
        // And the results agree with the unmemoized operation.
        assert_eq!(*r1, a.subtract(&b, Limits::default()));
    }

    #[test]
    fn memoized_results_match_fresh_computation() {
        let sess = AnalysisSession::new(Options::predicated());
        let a = interval("d", 1, 10);
        let b = interval("d", 3, 7);
        let lim = Limits::default();
        assert_eq!(*sess.union(&a, &b), a.union(&b, lim));
        assert_eq!(*sess.intersect(&a, &b), a.intersect(&b, lim));
        assert_eq!(sess.subset_of(&b, &a), b.subset_of(&a, lim));
        assert_eq!(sess.is_empty(&a), a.is_empty(lim));
        let dv = Var::new("d");
        assert_eq!(*sess.project_out(&a, &[dv]), a.project_out(&[dv], lim));
    }

    #[test]
    fn lat_pool_is_deterministic_per_proc() {
        let sess = AnalysisSession::new(Options::predicated());
        let a0 = sess.lat_var("p");
        let a1 = sess.lat_var("p");
        let b0 = sess.lat_var("q");
        assert_eq!(a0, Var::new("$lat.p.0"));
        assert_eq!(a1, Var::new("$lat.p.1"));
        assert_eq!(b0, Var::new("$lat.q.0"));
        assert_eq!(sess.stats().lat_overflow, 0);
    }

    #[test]
    fn trivial_implications_bypass_tables() {
        let sess = AnalysisSession::new(Options::predicated());
        assert!(sess.implies(&Pred::True, &Pred::True));
        assert!(sess.implies(&Pred::False, &Pred::True));
        assert_eq!(sess.stats().implies.total(), 0);
    }
}
