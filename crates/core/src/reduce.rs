//! Reduction recognition.
//!
//! Base SUIF recognizes scalar and array reductions: loops whose only
//! accesses to a variable are commutative self-updates
//! (`t = t ⊕ e`, `a[s] = a[s] ⊕ e`). The executor gives each worker a
//! private accumulator and combines partial results in iteration order.

use crate::report::{ReduceOp, Reduction};
use padfa_ir::ast::{Arg, Block, BoolExpr, Expr, Intrinsic, LValue, Stmt};
use padfa_omega::Var;
use std::collections::BTreeMap;

#[derive(Default)]
struct Tally {
    /// Consistent reduction operator seen so far.
    op: Option<ReduceOp>,
    is_array: bool,
    update_count: usize,
    /// Any access incompatible with the reduction form.
    disqualified: bool,
}

/// Find all reduction targets in a loop body.
///
/// A variable qualifies when every access to it inside the body is part
/// of a self-update with one consistent operator, the updated element is
/// the same on both sides, and the added expression does not read the
/// target.
pub fn find_reductions(body: &Block) -> Vec<Reduction> {
    let mut tallies: BTreeMap<Var, Tally> = BTreeMap::new();
    scan_block(body, &mut tallies);
    tallies
        .into_iter()
        .filter_map(|(target, t)| {
            if t.disqualified || t.update_count == 0 {
                None
            } else {
                t.op.map(|op| Reduction {
                    target,
                    is_array: t.is_array,
                    op,
                })
            }
        })
        .collect()
}

/// Match `rhs` as `lhs ⊕ e`, returning the operator and the non-target
/// operand.
fn match_update<'a>(lhs: &LValue, rhs: &'a Expr) -> Option<(ReduceOp, &'a Expr)> {
    let same = |e: &Expr| -> bool {
        match (lhs, e) {
            (LValue::Scalar(s), Expr::Scalar(v)) => s == v,
            (LValue::Elem(a, subs), Expr::Elem(b, idxs)) => a == b && subs == idxs,
            _ => false,
        }
    };
    match rhs {
        Expr::Add(a, b) => {
            if same(a) {
                Some((ReduceOp::Sum, b))
            } else if same(b) {
                Some((ReduceOp::Sum, a))
            } else {
                None
            }
        }
        // `t = t - e` is a sum reduction with negated operand.
        Expr::Sub(a, b) if same(a) => Some((ReduceOp::Sum, b)),
        Expr::Mul(a, b) => {
            if same(a) {
                Some((ReduceOp::Product, b))
            } else if same(b) {
                Some((ReduceOp::Product, a))
            } else {
                None
            }
        }
        Expr::Call(Intrinsic::Min, args) => {
            if same(&args[0]) {
                Some((ReduceOp::Min, &args[1]))
            } else if same(&args[1]) {
                Some((ReduceOp::Min, &args[0]))
            } else {
                None
            }
        }
        Expr::Call(Intrinsic::Max, args) => {
            if same(&args[0]) {
                Some((ReduceOp::Max, &args[1]))
            } else if same(&args[1]) {
                Some((ReduceOp::Max, &args[0]))
            } else {
                None
            }
        }
        _ => None,
    }
}

fn target_of(lhs: &LValue) -> (Var, bool) {
    match lhs {
        LValue::Scalar(s) => (*s, false),
        LValue::Elem(a, _) => (*a, true),
    }
}

/// Record a plain (non-update) read of every variable in `e`.
fn note_reads(e: &Expr, tallies: &mut BTreeMap<Var, Tally>) {
    let mut scalars = Vec::new();
    e.scalar_vars(&mut scalars);
    for v in scalars {
        tallies.entry(v).or_default().disqualified = true;
    }
    e.for_each_access(&mut |a, _| {
        tallies.entry(a).or_default().disqualified = true;
    });
}

fn note_bool_reads(b: &BoolExpr, tallies: &mut BTreeMap<Var, Tally>) {
    let mut scalars = Vec::new();
    b.scalar_vars(&mut scalars);
    for v in scalars {
        tallies.entry(v).or_default().disqualified = true;
    }
    b.for_each_access(&mut |a, _| {
        tallies.entry(a).or_default().disqualified = true;
    });
}

fn scan_block(b: &Block, tallies: &mut BTreeMap<Var, Tally>) {
    for s in &b.stmts {
        match s {
            Stmt::Assign { lhs, rhs } => {
                let (target, is_array) = target_of(lhs);
                if let Some((op, operand)) = match_update(lhs, rhs) {
                    // The operand and the subscripts must not read the
                    // target.
                    let mut reads_target = false;
                    let mut scalars = Vec::new();
                    operand.scalar_vars(&mut scalars);
                    if scalars.contains(&target) {
                        reads_target = true;
                    }
                    operand.for_each_access(&mut |a, _| {
                        if a == target {
                            reads_target = true;
                        }
                    });
                    if let LValue::Elem(_, subs) = lhs {
                        for sub in subs {
                            let mut sv = Vec::new();
                            sub.scalar_vars(&mut sv);
                            if sv.contains(&target) {
                                reads_target = true;
                            }
                            sub.for_each_access(&mut |a, _| {
                                if a == target {
                                    reads_target = true;
                                }
                            });
                            // Subscript reads of *other* variables count
                            // as ordinary reads.
                            note_reads(sub, tallies);
                        }
                    }
                    // Ordinary reads for everything in the operand.
                    note_reads(operand, tallies);
                    let t = tallies.entry(target).or_default();
                    t.is_array = is_array;
                    t.update_count += 1;
                    if reads_target {
                        t.disqualified = true;
                    }
                    match t.op {
                        None => t.op = Some(op),
                        Some(prev) if prev == op => {}
                        Some(_) => t.disqualified = true,
                    }
                } else {
                    // Ordinary write: disqualifies the target; rhs and
                    // subscripts are ordinary reads.
                    tallies.entry(target).or_default().disqualified = true;
                    note_reads(rhs, tallies);
                    if let LValue::Elem(_, subs) = lhs {
                        for sub in subs {
                            note_reads(sub, tallies);
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_blk,
                else_blk,
            } => {
                note_bool_reads(cond, tallies);
                scan_block(then_blk, tallies);
                scan_block(else_blk, tallies);
            }
            Stmt::For(l) => {
                note_reads(&l.lo, tallies);
                note_reads(&l.hi, tallies);
                // The inner loop index is written by the inner loop.
                tallies.entry(l.var).or_default().disqualified = true;
                scan_block(&l.body, tallies);
            }
            Stmt::Call { args, .. } => {
                for a in args {
                    match a {
                        Arg::Scalar(e) => note_reads(e, tallies),
                        Arg::Array(v) => tallies.entry(*v).or_default().disqualified = true,
                    }
                }
            }
            Stmt::Read(v) => {
                tallies.entry(*v).or_default().disqualified = true;
            }
            Stmt::Print(e) => note_reads(e, tallies),
            Stmt::ExitWhen(c) => note_bool_reads(c, tallies),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;
    use padfa_ir::Stmt;

    fn body_of(src: &str) -> Block {
        let p = parse_program(src).unwrap();
        match &p.procedures[0].body.stmts[0] {
            Stmt::For(l) => l.body.clone(),
            other => panic!("expected loop, got {other:?}"),
        }
    }

    #[test]
    fn scalar_sum_reduction() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s + a[i]; } }",
        );
        let r = find_reductions(&b);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].target, Var::new("s"));
        assert_eq!(r[0].op, ReduceOp::Sum);
        assert!(!r[0].is_array);
    }

    #[test]
    fn commuted_and_subtracting_forms() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = a[i] + s; } }",
        );
        assert_eq!(find_reductions(&b)[0].op, ReduceOp::Sum);
        let b2 = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s - a[i]; } }",
        );
        assert_eq!(find_reductions(&b2)[0].op, ReduceOp::Sum);
        // But `s = e - s` is NOT a reduction.
        let b3 = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = a[i] - s; } }",
        );
        assert!(find_reductions(&b3).is_empty());
    }

    #[test]
    fn array_histogram_reduction() {
        // Indirect subscripts are fine for reductions (the classic
        // histogram): a[idx[i]] = a[idx[i]] + 1.
        let b = body_of(
            "proc m(n: int) { array h[64]; array idx[100] of int;
             for i = 1 to n { h[idx[i]] = h[idx[i]] + 1.0; } }",
        );
        let r = find_reductions(&b);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].target, Var::new("h"));
        assert!(r[0].is_array);
    }

    #[test]
    fn min_max_product() {
        let b = body_of(
            "proc m(n: int) { var lo: real; var hi: real; var p: real; array a[100];
             for i = 1 to n { lo = min(lo, a[i]); hi = max(a[i], hi); p = p * a[i]; } }",
        );
        let r = find_reductions(&b);
        let get = |name: &str| r.iter().find(|x| x.target == Var::new(name)).unwrap().op;
        assert_eq!(get("lo"), ReduceOp::Min);
        assert_eq!(get("hi"), ReduceOp::Max);
        assert_eq!(get("p"), ReduceOp::Product);
    }

    #[test]
    fn mixed_operators_disqualify() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s + a[i]; s = s * a[i]; } }",
        );
        assert!(find_reductions(&b).is_empty());
    }

    #[test]
    fn outside_read_disqualifies() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s + a[i]; a[i] = s; } }",
        );
        assert!(find_reductions(&b).is_empty());
    }

    #[test]
    fn operand_reading_target_disqualifies() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s + s * a[i]; } }",
        );
        assert!(find_reductions(&b).is_empty());
    }

    #[test]
    fn plain_writes_disqualify() {
        let b = body_of(
            "proc m(n: int) { var s: real; array a[100];
             for i = 1 to n { s = s + a[i]; s = 0.0; } }",
        );
        assert!(find_reductions(&b).is_empty());
    }

    #[test]
    fn array_passed_to_call_disqualified() {
        let b = body_of(
            "proc m(n: int) { array h[64];
             for i = 1 to n { h[1] = h[1] + 1.0; call touch(h); } }
             proc touch(x: array[64]) { }",
        );
        assert!(find_reductions(&b).is_empty());
    }

    #[test]
    fn guarded_reduction_still_recognized() {
        let b = body_of(
            "proc m(n: int, x: int) { var s: real; array a[100];
             for i = 1 to n { if (x > 0) { s = s + a[i]; } } }",
        );
        assert_eq!(find_reductions(&b).len(), 1);
    }
}
