//! Predicated data-flow value components: sets of guarded regions.

use crate::session::AnalysisSession;
use padfa_omega::{Disjunction, Limits, Var};
use padfa_pred::{extract_symbolic, Pred};
use std::fmt;
use std::sync::Arc;

/// One guarded region: "when `pred` holds, the component includes
/// `region`". Regions are shared immutable handles (hash-consed by the
/// session on memoized paths), so cloning a piece never deep-copies the
/// constraint systems. A piece with `pred = True` is unconditional.
#[derive(Clone, PartialEq, Debug)]
pub struct GuardedRegion {
    pub pred: Pred,
    pub region: Arc<Disjunction>,
}

/// A predicated component (one of W/MW/R/E for one array in one region):
/// the union over pieces of `pred ? region : ∅`.
///
/// * In **may** components (MW, R, E) the truth of unknown predicates is
///   over-approximated: a consumer that ignores predicates must take the
///   union of all pieces.
/// * In **must** components (W) unknown predicates are
///   under-approximated: only pieces whose predicate is implied by the
///   current assumption count as definitely written.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct PredComponent {
    pub pieces: Vec<GuardedRegion>,
}

impl PredComponent {
    pub fn empty() -> PredComponent {
        PredComponent { pieces: Vec::new() }
    }

    pub fn single(pred: Pred, region: impl Into<Arc<Disjunction>>) -> PredComponent {
        let mut c = PredComponent::empty();
        c.push(pred, region);
        c
    }

    pub fn unconditional(region: impl Into<Arc<Disjunction>>) -> PredComponent {
        PredComponent::single(Pred::True, region)
    }

    /// Add a piece, dropping trivially-dead ones and merging with an
    /// existing piece that has the same predicate.
    pub fn push(&mut self, pred: Pred, region: impl Into<Arc<Disjunction>>) {
        let region = region.into();
        if pred.is_false() || region.is_empty_union() {
            return;
        }
        for p in &mut self.pieces {
            if p.pred == pred {
                p.region = Arc::new(p.region.union(&region, Limits::default()));
                return;
            }
        }
        self.pieces.push(GuardedRegion { pred, region });
    }

    /// Like [`PredComponent::push`], but same-predicate merges go
    /// through the session's memoized [`AnalysisSession::union`], so the
    /// merged region is hash-consed and the union memo sees the traffic.
    /// (The session's limits equal the defaults used by `push`, so the
    /// resulting component is identical — only memoization differs.)
    pub fn push_in(
        &mut self,
        pred: Pred,
        region: impl Into<Arc<Disjunction>>,
        sess: &AnalysisSession,
    ) {
        let region = region.into();
        if pred.is_false() || region.is_empty_union() {
            return;
        }
        for p in &mut self.pieces {
            if p.pred == pred {
                p.region = sess.union(&p.region, &region);
                return;
            }
        }
        self.pieces.push(GuardedRegion { pred, region });
    }

    /// Session-aware [`PredComponent::union`]: piece merges are memoized
    /// via [`PredComponent::push_in`].
    pub fn union_in(&self, other: &PredComponent, sess: &AnalysisSession) -> PredComponent {
        let mut out = self.clone();
        for p in &other.pieces {
            out.push_in(p.pred.clone(), p.region.clone(), sess);
        }
        out
    }

    /// True when no pieces remain.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Sound emptiness of the whole component (ignoring predicates).
    pub fn is_region_empty(&self, sess: &AnalysisSession) -> bool {
        self.pieces.iter().all(|p| sess.is_empty(&p.region))
    }

    /// Union of two components.
    pub fn union(&self, other: &PredComponent) -> PredComponent {
        let mut out = self.clone();
        for p in &other.pieces {
            out.push(p.pred.clone(), p.region.clone());
        }
        out
    }

    /// Conjoin `guard` onto every piece (entering a conditional branch).
    pub fn guard(&self, guard: &Pred) -> PredComponent {
        if guard.is_true() {
            return self.clone();
        }
        let mut out = PredComponent::empty();
        for p in &self.pieces {
            out.push(Pred::and(guard.clone(), p.pred.clone()), p.region.clone());
        }
        out
    }

    /// The union of all regions regardless of predicates — the sound
    /// **may** reading of the component.
    pub fn may_region(&self, sess: &AnalysisSession) -> Arc<Disjunction> {
        let mut acc = Arc::new(Disjunction::empty());
        for p in &self.pieces {
            acc = sess.union(&acc, &p.region);
        }
        acc
    }

    /// The union of regions whose predicate is implied by `assume` — the
    /// sound **must** reading under an assumption.
    pub fn must_region(&self, assume: &Pred, sess: &AnalysisSession) -> Arc<Disjunction> {
        let mut acc = Arc::new(Disjunction::empty());
        for p in &self.pieces {
            if sess.implies(assume, &p.pred) {
                acc = sess.union(&acc, &p.region);
            }
        }
        acc
    }

    /// Degrade pieces whose predicate mentions an unstable variable
    /// (modified within the enclosing region, so the predicate's value at
    /// region entry is unknown).
    ///
    /// * may components: the piece's predicate weakens to `True`;
    /// * must components (`may = false`): the piece is dropped.
    pub fn degrade_unstable(&self, unstable: &dyn Fn(Var) -> bool, may: bool) -> PredComponent {
        let mut out = PredComponent::empty();
        for p in &self.pieces {
            if p.pred.scalar_vars().iter().any(|&v| unstable(v)) {
                if may {
                    out.push(Pred::True, p.region.clone());
                }
            } else {
                out.push(p.pred.clone(), p.region.clone());
            }
        }
        out
    }

    /// Bound the number of pieces. Overflow pieces merge pairwise:
    /// for may components the merged predicate is the disjunction (the
    /// region may be accessed if either guard held); for must components
    /// the conjunction (both writes happen only when both guards hold).
    pub fn normalize(&mut self, max_pieces: usize, may: bool, sess: &AnalysisSession) {
        self.pieces
            .retain(|p| !p.pred.is_false() && !sess.is_empty(&p.region));
        // Keep unconditional pieces first (they are the "default" value).
        self.pieces.sort_by_key(|p| !p.pred.is_true());
        while self.pieces.len() > max_pieces.max(1) {
            let (Some(b), Some(a)) = (self.pieces.pop(), self.pieces.pop()) else {
                break; // unreachable: the loop guard keeps len >= 2
            };
            let pred = if may {
                Pred::or(a.pred, b.pred)
            } else {
                Pred::and(a.pred, b.pred)
            };
            let region = sess.union(&a.region, &b.region);
            self.push(pred, region);
        }
    }

    /// Project variables out of every region. For must components
    /// (`may = false`) pieces whose projection is inexact are dropped
    /// (an over-approximated must-region would be unsound).
    pub fn project_out(&self, vars: &[Var], may: bool, sess: &AnalysisSession) -> PredComponent {
        let mut out = PredComponent::empty();
        for p in &self.pieces {
            let r = sess.project_out(&p.region, vars);
            if !may && !r.is_exact() {
                continue;
            }
            out.push(p.pred.clone(), r);
        }
        out
    }

    /// Rename a variable in every region (predicates are untouched:
    /// renaming is used for the primed iteration copy, and predicates are
    /// loop-invariant by the time tests run).
    pub fn rename_regions(&self, from: Var, to: Var) -> PredComponent {
        PredComponent {
            pieces: self
                .pieces
                .iter()
                .map(|p| GuardedRegion {
                    pred: p.pred.clone(),
                    region: Arc::new(p.region.rename(from, to)),
                })
                .collect(),
        }
    }

    /// `PredSubtract`: subtract a must component from this may component
    /// (used for `E2 − W1` in sequence composition and for exposed reads
    /// across iterations).
    ///
    /// For each piece `(p, e)` of `self` and must piece `(q, w)`:
    /// * if `p ⇒ q`, the write definitely precedes the read whenever the
    ///   read happens: subtract regions directly;
    /// * otherwise, when predicates are enabled, split into an
    ///   optimistic piece `(p ∧ q, e − w)` and a pessimistic piece
    ///   `(p ∧ ¬q, e)`;
    /// * without predicates, only unconditional writes subtract.
    ///
    /// When `extract` is provided (predicate **extraction** enabled), any
    /// remainder system whose constraints over variables classified
    /// symbolic can be peeled off has that condition moved into the
    /// piece's predicate: the exposed region is nonempty *only when the
    /// extracted condition holds*.
    pub fn pred_subtract(
        &self,
        w: &PredComponent,
        predicates: bool,
        extract: Option<&dyn Fn(Var) -> bool>,
        sess: &AnalysisSession,
        extraction_fired: &mut bool,
    ) -> PredComponent {
        let mut cur = self.clone();
        for wp in &w.pieces {
            let mut next = PredComponent::empty();
            for ep in &cur.pieces {
                if wp.pred.is_true() || sess.implies(&ep.pred, &wp.pred) {
                    let rem = sess.subtract(&ep.region, &wp.region);
                    next.push(ep.pred.clone(), rem);
                } else if predicates {
                    let optimistic = Pred::and(ep.pred.clone(), wp.pred.clone());
                    if !optimistic.is_false() {
                        let rem = sess.subtract(&ep.region, &wp.region);
                        next.push(optimistic, rem);
                    }
                    let pessimistic = Pred::and(ep.pred.clone(), wp.pred.negate());
                    if !pessimistic.is_false() {
                        next.push(pessimistic, ep.region.clone());
                    }
                } else {
                    next.push(ep.pred.clone(), ep.region.clone());
                }
            }
            cur = next;
        }
        if let Some(is_symbolic) = extract {
            cur = cur.extract_predicates(is_symbolic, sess, extraction_fired);
        }
        cur
    }

    /// Apply predicate extraction to every piece.
    ///
    /// Two conditions move into the piece predicate:
    /// * constraints over symbolic variables only, verbatim;
    /// * the projection of the remaining constraints onto the symbolic
    ///   variables — the (over-approximated, hence sound-to-negate)
    ///   condition for the region to be non-empty. This is how
    ///   emptiness conditions like "`n < 10` ⇒ something stays exposed"
    ///   become run-time tests.
    pub fn extract_predicates(
        &self,
        is_symbolic: &dyn Fn(Var) -> bool,
        sess: &AnalysisSession,
        fired: &mut bool,
    ) -> PredComponent {
        let limits = sess.limits();
        let mut out = PredComponent::empty();
        for p in &self.pieces {
            if p.region.is_empty_union() {
                continue;
            }
            for sys in p.region.systems() {
                let (q_direct, residual) = extract_symbolic(sys, is_symbolic);
                // Emptiness condition of the residual: project out the
                // non-symbolic variables; what remains constrains only
                // symbolics and must hold for any point to exist.
                let junk: Vec<Var> = residual
                    .vars()
                    .into_iter()
                    .filter(|&v| !is_symbolic(v))
                    .collect();
                sess.note_fm_projection();
                let proj = residual.project_out(&junk, limits);
                let (q_proj, leftover) = extract_symbolic(&proj.system, is_symbolic);
                // `leftover` can only be non-universe if projection left
                // non-symbolic constraints behind, which project_out
                // precludes; guard defensively anyway.
                let q = if leftover.is_universe() {
                    Pred::and(q_direct, q_proj)
                } else {
                    q_direct
                };
                if q.is_true() {
                    let mut r = Disjunction::from_system(sys.clone());
                    if !p.region.is_exact() {
                        r.set_inexact();
                    }
                    out.push(p.pred.clone(), r);
                } else {
                    *fired = true;
                    let mut r = Disjunction::from_system(residual.clone());
                    if !p.region.is_exact() {
                        r.set_inexact();
                    }
                    out.push(Pred::and(p.pred.clone(), q), r);
                }
            }
        }
        out
    }
}

impl fmt::Display for PredComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.pieces.is_empty() {
            return write!(f, "∅");
        }
        for (i, p) in self.pieces.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "[{} -> {}]", p.pred, p.region)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use padfa_omega::{Constraint, LinExpr, System};
    use padfa_pred::Pred;

    fn v(n: &str) -> Var {
        Var::new(n)
    }
    fn sess() -> AnalysisSession {
        AnalysisSession::new(Options::predicated())
    }
    fn lim() -> Limits {
        Limits::default()
    }

    fn interval(var: &str, lo: i64, hi: i64) -> Disjunction {
        Disjunction::from_system(System::from_constraints([
            Constraint::geq(LinExpr::var(v(var)), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(v(var)), LinExpr::constant(hi)),
        ]))
    }

    fn pred(src: &str) -> Pred {
        Pred::from_bool(&padfa_ir::parse::parse_bool_expr(src).unwrap())
    }

    #[test]
    fn push_merges_equal_preds() {
        let mut c = PredComponent::empty();
        c.push(pred("x > 1"), interval("d", 1, 3));
        c.push(pred("x > 1"), interval("d", 7, 9));
        assert_eq!(c.pieces.len(), 1);
        assert_eq!(c.pieces[0].region.len(), 2);
    }

    #[test]
    fn may_and_must_readings() {
        let s = sess();
        let mut c = PredComponent::empty();
        c.push(Pred::True, interval("d", 1, 3));
        c.push(pred("x > 1"), interval("d", 5, 8));
        let may = c.may_region(&s);
        assert_eq!(may.contains(&|_| Some(6)), Some(true));
        // Under no assumption, only the unconditional piece is must.
        let must = c.must_region(&Pred::True, &s);
        assert_eq!(must.contains(&|_| Some(6)), Some(false));
        assert_eq!(must.contains(&|_| Some(2)), Some(true));
        // Under the assumption x > 1, both pieces are must.
        let must2 = c.must_region(&pred("x > 1"), &s);
        assert_eq!(must2.contains(&|_| Some(6)), Some(true));
    }

    #[test]
    fn guard_conjoins() {
        let c = PredComponent::unconditional(interval("d", 1, 3)).guard(&pred("x > 0"));
        assert_eq!(c.pieces[0].pred, pred("x > 0"));
    }

    #[test]
    fn degrade_unstable_directions() {
        let mut c = PredComponent::empty();
        c.push(pred("x > 1"), interval("d", 1, 3));
        let xvar = v("x");
        let may = c.degrade_unstable(&|w| w == xvar, true);
        assert!(may.pieces[0].pred.is_true());
        let must = c.degrade_unstable(&|w| w == xvar, false);
        assert!(must.is_empty());
        // Stable predicates survive.
        let keep = c.degrade_unstable(&|_| false, false);
        assert_eq!(keep.pieces[0].pred, pred("x > 1"));
    }

    #[test]
    fn normalize_caps_pieces() {
        let mut c = PredComponent::empty();
        c.push(Pred::True, interval("d", 1, 2));
        c.push(pred("x > 1"), interval("d", 3, 4));
        c.push(pred("y > 1"), interval("d", 5, 6));
        c.push(pred("z > 1"), interval("d", 7, 8));
        let s = sess();
        let mut may = c.clone();
        may.normalize(2, true, &s);
        assert!(may.pieces.len() <= 2);
        // All regions must still be covered (may = over-approx).
        let m = may.may_region(&s);
        for x in [1, 3, 5, 7] {
            assert_eq!(m.contains(&|_| Some(x)), Some(true));
        }
    }

    #[test]
    fn pred_subtract_implied_guard() {
        // E = [1,10] under p; W = [1,10] under p. p ⇒ p: remainder empty.
        let s = sess();
        let e = PredComponent::single(pred("x > 1"), interval("d", 1, 10));
        let w = PredComponent::single(pred("x > 1"), interval("d", 1, 10));
        let mut fired = false;
        let r = e.pred_subtract(&w, true, None, &s, &mut fired);
        assert!(r.is_region_empty(&s));
        assert!(!fired);
    }

    #[test]
    fn pred_subtract_splits_on_unrelated_guard() {
        // E unconditional [1,10]; W guarded by x > 1 over [1,10]:
        // remainder exposed only when !(x > 1).
        let s = sess();
        let e = PredComponent::unconditional(interval("d", 1, 10));
        let w = PredComponent::single(pred("x > 1"), interval("d", 1, 10));
        let mut fired = false;
        let r = e.pred_subtract(&w, true, None, &s, &mut fired);
        // One piece (x > 1, ∅) dropped; one piece (x <= 1, [1,10]).
        assert_eq!(r.pieces.len(), 1);
        assert_eq!(r.pieces[0].pred, pred("x <= 1"));
        // Without predicates the subtraction cannot happen at all.
        let r2 = e.pred_subtract(&w, false, None, &s, &mut fired);
        assert_eq!(r2.pieces[0].pred, Pred::True);
        assert_eq!(r2.pieces[0].region.contains(&|_| Some(5)), Some(true));
    }

    #[test]
    fn pred_subtract_extraction() {
        // E = [1,10]; W = [1,n] (n symbolic): remainder [n+1,10] exposed
        // only when n < 10 — extraction moves that into the predicate.
        let e = PredComponent::unconditional(interval("d", 1, 10));
        let w = PredComponent::unconditional(Disjunction::from_system(System::from_constraints([
            Constraint::geq(LinExpr::var(v("d")), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(v("d")), LinExpr::var(v("n"))),
        ])));
        let s = sess();
        let mut fired = false;
        let nvar = v("n");
        let r = e.pred_subtract(&w, true, Some(&|x| x == nvar), &s, &mut fired);
        assert!(fired, "extraction should fire");
        assert_eq!(r.pieces.len(), 1);
        // The predicate must say n <= 9 (i.e. n + 1 <= 10).
        assert!(pred("n <= 9").implies(&r.pieces[0].pred, lim()));
        assert!(r.pieces[0].pred.implies(&pred("n <= 9"), lim()));
    }

    #[test]
    fn project_out_must_drops_inexact() {
        // A region whose projection is inexact must vanish from a must
        // component but stay in a may component.
        let sys = System::from_constraints([
            Constraint::geq0(LinExpr::term(v("q"), 2) - LinExpr::var(v("d"))),
            Constraint::geq0(LinExpr::term(v("q"), -3) + LinExpr::var(v("d"))),
        ]);
        let s = sess();
        let c = PredComponent::unconditional(Disjunction::from_system(sys));
        let qv = v("q");
        let must = c.project_out(&[qv], false, &s);
        assert!(must.is_empty());
        let may = c.project_out(&[qv], true, &s);
        assert!(!may.is_empty());
    }
}
