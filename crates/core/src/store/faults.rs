//! Deterministic IO fault injection for the persistent store, mirroring
//! the `rt::faults` discipline: a plan names which store operation fails
//! and how, the same plan always produces the same failure, and the test
//! suite uses plans to prove every failure mode degrades soundly.
//!
//! Counting is per *category*: the N-th read (or write) performed by the
//! store fires the fault armed at `at_op = N`. Store operations are
//! sequenced deterministically on the paths that matter (opens and
//! journal appends run under the journal lock; the crash-consistency
//! tests drive single-threaded sessions), so a plan pins down one
//! concrete failure.

/// What kind of IO fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFaultKind {
    /// A journal write fails with an injected IO error.
    WriteFail,
    /// A segment read fails with an injected IO error.
    ReadFail,
    /// A journal write persists only a prefix of the record and then the
    /// "process" dies: subsequent writes fail. Reopening the store sees
    /// a torn tail — exactly what a crash mid-append leaves behind.
    TornWrite,
    /// A segment read succeeds but one deterministic bit of the returned
    /// bytes is flipped (silent media corruption).
    BitFlip,
}

impl IoFaultKind {
    pub fn label(self) -> &'static str {
        match self {
            IoFaultKind::WriteFail => "store-write-fail",
            IoFaultKind::ReadFail => "store-read-fail",
            IoFaultKind::TornWrite => "store-torn-write",
            IoFaultKind::BitFlip => "store-bitflip",
        }
    }

    fn is_write(self) -> bool {
        matches!(self, IoFaultKind::WriteFail | IoFaultKind::TornWrite)
    }
}

/// One fault: fires on the `at_op`-th store operation of its category
/// (1-based; reads for read-side kinds, writes for write-side kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoFaultSpec {
    pub at_op: u64,
    pub kind: IoFaultKind,
}

/// A deterministic set of IO faults to inject into a store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoFaultPlan {
    pub faults: Vec<IoFaultSpec>,
}

impl IoFaultPlan {
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Add a fault to the plan (builder-style).
    pub fn with(mut self, spec: IoFaultSpec) -> IoFaultPlan {
        self.faults.push(spec);
        self
    }

    /// `kind` fires on the `at_op`-th operation of its category.
    pub fn at(kind: IoFaultKind, at_op: u64) -> IoFaultPlan {
        IoFaultPlan::none().with(IoFaultSpec { at_op, kind })
    }

    /// A seeded pseudo-random plan of `count` faults over operation
    /// counts in `1..=max_op`. The same seed always yields the same
    /// plan (same generator as `rt::faults`).
    pub fn seeded(seed: u64, count: usize, max_op: u64) -> IoFaultPlan {
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            // xorshift64*: cheap, deterministic, no external deps.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let max_op = max_op.max(1);
        let mut plan = IoFaultPlan::none();
        for _ in 0..count {
            let at_op = next() % max_op + 1;
            let kind = match next() % 4 {
                0 => IoFaultKind::WriteFail,
                1 => IoFaultKind::ReadFail,
                2 => IoFaultKind::TornWrite,
                _ => IoFaultKind::BitFlip,
            };
            plan.faults.push(IoFaultSpec { at_op, kind });
        }
        plan
    }

    /// The fault (if any) armed for the `op`-th *read* operation.
    pub fn read_fault(&self, op: u64) -> Option<IoFaultKind> {
        self.faults
            .iter()
            .find(|f| !f.kind.is_write() && f.at_op == op)
            .map(|f| f.kind)
    }

    /// The fault (if any) armed for the `op`-th *write* operation.
    pub fn write_fault(&self, op: u64) -> Option<IoFaultKind> {
        self.faults
            .iter()
            .find(|f| f.kind.is_write() && f.at_op == op)
            .map(|f| f.kind)
    }
}

/// Flip one seed-determined bit of `bytes` in place (the `BitFlip`
/// payload mutation). No-op on an empty slice.
pub fn flip_bit(bytes: &mut [u8], op: u64) {
    if bytes.is_empty() {
        return;
    }
    let mut state = op ^ 0x9E37_79B9_7F4A_7C15;
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    let r = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
    let idx = (r % bytes.len() as u64) as usize;
    let bit = (r >> 32) % 8;
    bytes[idx] ^= 1 << bit;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let plan = IoFaultPlan::at(IoFaultKind::WriteFail, 3).with(IoFaultSpec {
            at_op: 1,
            kind: IoFaultKind::BitFlip,
        });
        assert_eq!(plan.faults.len(), 2);
        assert_eq!(plan.write_fault(3), Some(IoFaultKind::WriteFail));
        assert_eq!(plan.write_fault(1), None);
        assert_eq!(plan.read_fault(1), Some(IoFaultKind::BitFlip));
        assert_eq!(plan.read_fault(3), None);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = IoFaultPlan::seeded(42, 8, 100);
        let b = IoFaultPlan::seeded(42, 8, 100);
        assert_eq!(a, b);
        assert_eq!(a.faults.len(), 8);
        for f in &a.faults {
            assert!((1..=100).contains(&f.at_op));
        }
        assert_ne!(a, IoFaultPlan::seeded(43, 8, 100));
    }

    #[test]
    fn bit_flips_are_deterministic_and_single_bit() {
        let orig = [0u8; 16];
        let mut a = orig;
        let mut b = orig;
        flip_bit(&mut a, 5);
        flip_bit(&mut b, 5);
        assert_eq!(a, b);
        let diff: u32 = orig
            .iter()
            .zip(a.iter())
            .map(|(x, y)| (x ^ y).count_ones())
            .sum();
        assert_eq!(diff, 1);
        flip_bit(&mut [], 1); // must not panic
    }

    #[test]
    fn empty_plan_arms_nothing() {
        assert!(IoFaultPlan::none().is_empty());
        assert_eq!(IoFaultPlan::none().read_fault(1), None);
        assert_eq!(IoFaultPlan::none().write_fault(1), None);
    }
}
