//! Structural byte codec for store payloads and key operands.
//!
//! One codec serves two purposes: store *keys* are hashes of the
//! canonical encoding of the query operands (so the encoding IS the
//! canonicalization), and store *payloads* are the encoding of the
//! result values. Round-tripping must be bit-exact — a decoded region
//! must equal the freshly-computed one including constraint order —
//! which is why [`System::from_raw_parts`] / [`Disjunction::from_raw_parts`]
//! exist: the ordinary constructors re-normalize and may reorder or
//! drop parts.
//!
//! Variables are encoded **by name** and re-interned on decode. Interned
//! indices are process-local (they depend on interning order), so they
//! never touch the disk; names are the cross-process identity. Floats
//! are encoded via [`f64::to_bits`] so `-0.0`/NaN payloads survive.
//!
//! Every `decode_*` returns `Option`: any malformed byte stream — a
//! truncated buffer, an unknown tag, a length that overruns — decodes to
//! `None`, which the store treats as a corrupt entry (quarantine + cache
//! miss), never as an error the analysis can observe.

use crate::component::{GuardedRegion, PredComponent};
use crate::provenance::{
    ArrayEvidence, ArrayVerdict, BudgetEvent, Mechanism, PairEvidence, PairKind, PairOutcome,
    Provenance, RejectReason, ScalarEvidence, ScalarVerdict,
};
use crate::report::{
    LoopReport, Mechanisms, NotCandidateReason, Outcome, PrivArray, ReduceOp, Reduction,
};
use crate::summary::{ArraySummary, ScalarSummary, Summary};
use padfa_ir::ast::{BoolExpr, CmpOp, Expr, Intrinsic};
use padfa_ir::LoopId;
use padfa_omega::{CKind, Constraint, Disjunction, LinExpr, System, Tier, Var};
use padfa_pred::{Atom, AtomKind, Pred};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

// ------------------------------------------------------------------
// Primitive writers
// ------------------------------------------------------------------

pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

// ------------------------------------------------------------------
// Primitive reader
// ------------------------------------------------------------------

/// Cursor over a decode buffer. All reads are bounds-checked and return
/// `None` past the end — decoding never panics on corrupt input.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// True when every byte has been consumed (decoders of complete
    /// payloads check this so trailing garbage counts as corruption).
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    pub fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    pub fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub fn u128(&mut self) -> Option<u128> {
        Some(u128::from_le_bytes(self.take(16)?.try_into().ok()?))
    }

    pub fn i64(&mut self) -> Option<i64> {
        Some(i64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    pub fn boolean(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        // A bit-flipped length would otherwise ask for gigabytes.
        if n > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    /// Bounded element count for a `Vec` about to be decoded: each
    /// element needs at least one byte, so any count beyond the
    /// remaining bytes is corrupt.
    fn count(&mut self) -> Option<usize> {
        let n = self.u32()? as usize;
        if n > self.buf.len().saturating_sub(self.pos) {
            return None;
        }
        Some(n)
    }
}

// ------------------------------------------------------------------
// omega / pred operand encodings (also hashed into keys)
// ------------------------------------------------------------------

pub fn put_var(out: &mut Vec<u8>, v: Var) {
    put_str(out, &v.name());
}

pub fn get_var(r: &mut Reader) -> Option<Var> {
    Some(Var::new(&r.str()?))
}

pub fn put_linexpr(out: &mut Vec<u8>, e: &LinExpr) {
    put_i64(out, e.konst());
    put_u32(out, e.num_terms() as u32);
    for (v, c) in e.terms() {
        put_var(out, v);
        put_i64(out, c);
    }
}

pub fn get_linexpr(r: &mut Reader) -> Option<LinExpr> {
    let konst = r.i64()?;
    let n = r.count()?;
    let mut e = LinExpr::constant(konst);
    for _ in 0..n {
        let v = get_var(r)?;
        let c = r.i64()?;
        e.add_term(v, c);
    }
    Some(e)
}

pub fn put_constraint(out: &mut Vec<u8>, c: &Constraint) {
    put_u8(
        out,
        match c.kind {
            CKind::Eq => 0,
            CKind::Geq => 1,
        },
    );
    put_linexpr(out, &c.expr);
}

pub fn get_constraint(r: &mut Reader) -> Option<Constraint> {
    let kind = match r.u8()? {
        0 => CKind::Eq,
        1 => CKind::Geq,
        _ => return None,
    };
    let expr = get_linexpr(r)?;
    Some(Constraint { expr, kind })
}

pub fn put_system(out: &mut Vec<u8>, s: &System) {
    put_bool(out, s.is_contradiction());
    // The dense-cache state travels with the system: push-built systems
    // legitimately lack the cache even when box-shaped, and a decoded
    // system must answer queries on the same tier as the one stored
    // (recomputing the classification here would make warm runs
    // dense-answer queries the cold run sent through Fourier–Motzkin).
    put_bool(out, s.has_dense());
    put_u32(out, s.constraints().len() as u32);
    for c in s.constraints() {
        put_constraint(out, c);
    }
}

pub fn get_system(r: &mut Reader) -> Option<System> {
    let contradiction = r.boolean()?;
    let dense = r.boolean()?;
    let n = r.count()?;
    let mut cs = Vec::with_capacity(n);
    for _ in 0..n {
        cs.push(get_constraint(r)?);
    }
    Some(System::from_raw_parts(cs, contradiction, dense))
}

/// One byte for the tier that answered a memoized query, persisted in
/// entry payloads so warm-store replays credit the same tier counters
/// as the cold run.
pub fn put_tier(out: &mut Vec<u8>, t: Tier) {
    put_u8(
        out,
        match t {
            Tier::Dense => 0,
            Tier::General => 1,
        },
    );
}

pub fn get_tier(r: &mut Reader) -> Option<Tier> {
    match r.u8()? {
        0 => Some(Tier::Dense),
        1 => Some(Tier::General),
        _ => None,
    }
}

pub fn put_region(out: &mut Vec<u8>, d: &Disjunction) {
    put_bool(out, d.is_exact());
    put_u32(out, d.systems().len() as u32);
    for s in d.systems() {
        put_system(out, s);
    }
}

pub fn get_region(r: &mut Reader) -> Option<Disjunction> {
    let exact = r.boolean()?;
    let n = r.count()?;
    let mut systems = Vec::with_capacity(n);
    for _ in 0..n {
        systems.push(get_system(r)?);
    }
    Some(Disjunction::from_raw_parts(systems, exact))
}

pub fn put_expr(out: &mut Vec<u8>, e: &Expr) {
    match e {
        Expr::IntLit(v) => {
            put_u8(out, 0);
            put_i64(out, *v);
        }
        Expr::RealLit(v) => {
            put_u8(out, 1);
            put_u64(out, v.to_bits());
        }
        Expr::Scalar(v) => {
            put_u8(out, 2);
            put_var(out, *v);
        }
        Expr::Elem(a, subs) => {
            put_u8(out, 3);
            put_var(out, *a);
            put_u32(out, subs.len() as u32);
            for s in subs {
                put_expr(out, s);
            }
        }
        Expr::Add(a, b) => put_bin(out, 4, a, b),
        Expr::Sub(a, b) => put_bin(out, 5, a, b),
        Expr::Mul(a, b) => put_bin(out, 6, a, b),
        Expr::Div(a, b) => put_bin(out, 7, a, b),
        Expr::Mod(a, b) => put_bin(out, 8, a, b),
        Expr::Neg(a) => {
            put_u8(out, 9);
            put_expr(out, a);
        }
        Expr::Call(intr, args) => {
            put_u8(out, 10);
            put_u8(out, *intr as u8);
            put_u32(out, args.len() as u32);
            for a in args {
                put_expr(out, a);
            }
        }
    }
}

fn put_bin(out: &mut Vec<u8>, tag: u8, a: &Expr, b: &Expr) {
    put_u8(out, tag);
    put_expr(out, a);
    put_expr(out, b);
}

pub fn get_expr(r: &mut Reader) -> Option<Expr> {
    Some(match r.u8()? {
        0 => Expr::IntLit(r.i64()?),
        1 => Expr::RealLit(f64::from_bits(r.u64()?)),
        2 => Expr::Scalar(get_var(r)?),
        3 => {
            let a = get_var(r)?;
            let n = r.count()?;
            let mut subs = Vec::with_capacity(n);
            for _ in 0..n {
                subs.push(get_expr(r)?);
            }
            Expr::Elem(a, subs)
        }
        4 => Expr::Add(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        5 => Expr::Sub(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        6 => Expr::Mul(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        7 => Expr::Div(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        8 => Expr::Mod(Box::new(get_expr(r)?), Box::new(get_expr(r)?)),
        9 => Expr::Neg(Box::new(get_expr(r)?)),
        10 => {
            let intr = match r.u8()? {
                0 => Intrinsic::Sin,
                1 => Intrinsic::Cos,
                2 => Intrinsic::Sqrt,
                3 => Intrinsic::Exp,
                4 => Intrinsic::Abs,
                5 => Intrinsic::Min,
                6 => Intrinsic::Max,
                _ => return None,
            };
            let n = r.count()?;
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_expr(r)?);
            }
            Expr::Call(intr, args)
        }
        _ => return None,
    })
}

pub fn put_bool_expr(out: &mut Vec<u8>, b: &BoolExpr) {
    match b {
        BoolExpr::Lit(v) => {
            put_u8(out, 0);
            put_bool(out, *v);
        }
        BoolExpr::Cmp(op, a, c) => {
            put_u8(out, 1);
            put_u8(out, *op as u8);
            put_expr(out, a);
            put_expr(out, c);
        }
        BoolExpr::And(a, c) => {
            put_u8(out, 2);
            put_bool_expr(out, a);
            put_bool_expr(out, c);
        }
        BoolExpr::Or(a, c) => {
            put_u8(out, 3);
            put_bool_expr(out, a);
            put_bool_expr(out, c);
        }
        BoolExpr::Not(a) => {
            put_u8(out, 4);
            put_bool_expr(out, a);
        }
    }
}

pub fn get_bool_expr(r: &mut Reader) -> Option<BoolExpr> {
    Some(match r.u8()? {
        0 => BoolExpr::Lit(r.boolean()?),
        1 => {
            let op = match r.u8()? {
                0 => CmpOp::Eq,
                1 => CmpOp::Ne,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                5 => CmpOp::Ge,
                _ => return None,
            };
            let a = get_expr(r)?;
            let c = get_expr(r)?;
            BoolExpr::Cmp(op, a, c)
        }
        2 => BoolExpr::And(Box::new(get_bool_expr(r)?), Box::new(get_bool_expr(r)?)),
        3 => BoolExpr::Or(Box::new(get_bool_expr(r)?), Box::new(get_bool_expr(r)?)),
        4 => BoolExpr::Not(Box::new(get_bool_expr(r)?)),
        _ => return None,
    })
}

pub fn put_pred(out: &mut Vec<u8>, p: &Pred) {
    match p {
        Pred::True => put_u8(out, 0),
        Pred::False => put_u8(out, 1),
        Pred::Atom(a) => {
            put_u8(out, 2);
            match a {
                Atom::Affine { expr, kind } => {
                    put_u8(out, 0);
                    put_u8(
                        out,
                        match kind {
                            AtomKind::Geq => 0,
                            AtomKind::Eq => 1,
                        },
                    );
                    put_linexpr(out, expr);
                }
                Atom::Opaque(b) => {
                    put_u8(out, 1);
                    put_bool_expr(out, b);
                }
            }
        }
        Pred::And(ps) => {
            put_u8(out, 3);
            put_u32(out, ps.len() as u32);
            for q in ps {
                put_pred(out, q);
            }
        }
        Pred::Or(ps) => {
            put_u8(out, 4);
            put_u32(out, ps.len() as u32);
            for q in ps {
                put_pred(out, q);
            }
        }
    }
}

pub fn get_pred(r: &mut Reader) -> Option<Pred> {
    Some(match r.u8()? {
        0 => Pred::True,
        1 => Pred::False,
        2 => match r.u8()? {
            0 => {
                let kind = match r.u8()? {
                    0 => AtomKind::Geq,
                    1 => AtomKind::Eq,
                    _ => return None,
                };
                let expr = get_linexpr(r)?;
                Pred::Atom(Atom::Affine { expr, kind })
            }
            1 => Pred::Atom(Atom::Opaque(get_bool_expr(r)?)),
            _ => return None,
        },
        3 => {
            let n = r.count()?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(get_pred(r)?);
            }
            Pred::And(ps)
        }
        4 => {
            let n = r.count()?;
            let mut ps = Vec::with_capacity(n);
            for _ in 0..n {
                ps.push(get_pred(r)?);
            }
            Pred::Or(ps)
        }
        _ => return None,
    })
}

pub fn put_vars(out: &mut Vec<u8>, vs: &[Var]) {
    put_u32(out, vs.len() as u32);
    for &v in vs {
        put_var(out, v);
    }
}

// ------------------------------------------------------------------
// Summary encodings
// ------------------------------------------------------------------

fn put_component(out: &mut Vec<u8>, c: &PredComponent) {
    put_u32(out, c.pieces.len() as u32);
    for p in &c.pieces {
        put_pred(out, &p.pred);
        put_region(out, &p.region);
    }
}

/// Decode a component by direct construction. [`PredComponent::push`]
/// merges same-pred pieces and drops empty ones, so it cannot round-trip
/// an arbitrary stored component bit-exactly.
fn get_component(r: &mut Reader) -> Option<PredComponent> {
    let n = r.count()?;
    let mut pieces = Vec::with_capacity(n);
    for _ in 0..n {
        let pred = get_pred(r)?;
        let region = Arc::new(get_region(r)?);
        pieces.push(GuardedRegion { pred, region });
    }
    Some(PredComponent { pieces })
}

pub fn put_summary(out: &mut Vec<u8>, s: &Summary) {
    put_u32(out, s.arrays.len() as u32);
    for (v, a) in &s.arrays {
        put_var(out, *v);
        put_component(out, &a.w);
        put_component(out, &a.mw);
        put_component(out, &a.r);
        put_component(out, &a.e);
    }
    put_u32(out, s.scalars.len() as u32);
    for (v, sc) in &s.scalars {
        put_var(out, *v);
        put_bool(out, sc.must_write);
        put_bool(out, sc.may_write);
        put_bool(out, sc.exposed_read);
    }
    put_u32(out, s.scalar_writes.len() as u32);
    for &v in &s.scalar_writes {
        put_var(out, v);
    }
    put_bool(out, s.has_io);
    put_bool(out, s.has_exit);
    put_bool(out, s.degraded);
}

pub fn get_summary(r: &mut Reader) -> Option<Summary> {
    let mut arrays = BTreeMap::new();
    let n = r.count()?;
    for _ in 0..n {
        let v = get_var(r)?;
        let w = get_component(r)?;
        let mw = get_component(r)?;
        let rr = get_component(r)?;
        let e = get_component(r)?;
        arrays.insert(v, ArraySummary { w, mw, r: rr, e });
    }
    let mut scalars = BTreeMap::new();
    let n = r.count()?;
    for _ in 0..n {
        let v = get_var(r)?;
        let must_write = r.boolean()?;
        let may_write = r.boolean()?;
        let exposed_read = r.boolean()?;
        scalars.insert(
            v,
            ScalarSummary {
                must_write,
                may_write,
                exposed_read,
            },
        );
    }
    let mut scalar_writes = BTreeSet::new();
    let n = r.count()?;
    for _ in 0..n {
        scalar_writes.insert(get_var(r)?);
    }
    Some(Summary {
        arrays,
        scalars,
        scalar_writes,
        has_io: r.boolean()?,
        has_exit: r.boolean()?,
        degraded: r.boolean()?,
    })
}

// ------------------------------------------------------------------
// Report / provenance encodings
// ------------------------------------------------------------------

fn put_opt<T>(out: &mut Vec<u8>, v: &Option<T>, f: impl FnOnce(&mut Vec<u8>, &T)) {
    match v {
        None => put_u8(out, 0),
        Some(x) => {
            put_u8(out, 1);
            f(out, x);
        }
    }
}

fn get_opt<T>(r: &mut Reader, f: impl FnOnce(&mut Reader) -> Option<T>) -> Option<Option<T>> {
    match r.u8()? {
        0 => Some(None),
        1 => Some(Some(f(r)?)),
        _ => None,
    }
}

fn put_mechanism(out: &mut Vec<u8>, m: Mechanism) {
    put_u8(
        out,
        match m {
            Mechanism::Base => 0,
            Mechanism::Predicates => 1,
            Mechanism::Embedding => 2,
            Mechanism::Extraction => 3,
            Mechanism::RuntimeTest => 4,
        },
    );
}

fn get_mechanism(r: &mut Reader) -> Option<Mechanism> {
    Some(match r.u8()? {
        0 => Mechanism::Base,
        1 => Mechanism::Predicates,
        2 => Mechanism::Embedding,
        3 => Mechanism::Extraction,
        4 => Mechanism::RuntimeTest,
        _ => return None,
    })
}

fn put_pair(out: &mut Vec<u8>, p: &PairEvidence) {
    put_u8(
        out,
        match p.kind {
            PairKind::WriteWrite => 0,
            PairKind::WriteRead => 1,
            PairKind::ExposedWrite => 2,
        },
    );
    put_pred(out, &p.w_pred);
    put_pred(out, &p.x_pred);
    put_u8(
        out,
        match p.outcome {
            PairOutcome::GuardsExclude => 0,
            PairOutcome::RegionsDisjoint => 1,
            PairOutcome::Extracted => 2,
            PairOutcome::Assumed => 3,
        },
    );
    put_pred(out, &p.condition);
}

fn get_pair(r: &mut Reader) -> Option<PairEvidence> {
    let kind = match r.u8()? {
        0 => PairKind::WriteWrite,
        1 => PairKind::WriteRead,
        2 => PairKind::ExposedWrite,
        _ => return None,
    };
    let w_pred = Arc::new(get_pred(r)?);
    let x_pred = Arc::new(get_pred(r)?);
    let outcome = match r.u8()? {
        0 => PairOutcome::GuardsExclude,
        1 => PairOutcome::RegionsDisjoint,
        2 => PairOutcome::Extracted,
        3 => PairOutcome::Assumed,
        _ => return None,
    };
    let condition = get_pred(r)?;
    Some(PairEvidence {
        kind,
        w_pred,
        x_pred,
        outcome,
        condition,
    })
}

fn put_reject(out: &mut Vec<u8>, rr: RejectReason) {
    put_u8(
        out,
        match rr {
            RejectReason::Disabled => 0,
            RejectReason::Degenerate => 1,
            RejectReason::NotScalarTest => 2,
            RejectReason::OverCostBudget => 3,
        },
    );
}

fn get_reject(r: &mut Reader) -> Option<RejectReason> {
    Some(match r.u8()? {
        0 => RejectReason::Disabled,
        1 => RejectReason::Degenerate,
        2 => RejectReason::NotScalarTest,
        3 => RejectReason::OverCostBudget,
        _ => return None,
    })
}

fn put_array_evidence(out: &mut Vec<u8>, a: &ArrayEvidence) {
    put_var(out, a.array);
    match &a.verdict {
        ArrayVerdict::Reduction => put_u8(out, 0),
        ArrayVerdict::Independent => put_u8(out, 1),
        ArrayVerdict::Privatized { copy_in } => {
            put_u8(out, 2);
            put_bool(out, *copy_in);
        }
        ArrayVerdict::RuntimeTested {
            test,
            with_privatization,
        } => {
            put_u8(out, 3);
            put_pred(out, test);
            put_bool(out, *with_privatization);
        }
        ArrayVerdict::Blocking { dep, rejected } => {
            put_u8(out, 4);
            put_pred(out, dep);
            put_opt(out, rejected, |o, (p, rr)| {
                put_pred(o, p);
                put_reject(o, *rr);
            });
        }
    }
    put_u32(out, a.dep_pairs.len() as u32);
    for p in &a.dep_pairs {
        put_pair(out, p);
    }
    put_u32(out, a.priv_pairs.len() as u32);
    for p in &a.priv_pairs {
        put_pair(out, p);
    }
}

fn get_array_evidence(r: &mut Reader) -> Option<ArrayEvidence> {
    let array = get_var(r)?;
    let verdict = match r.u8()? {
        0 => ArrayVerdict::Reduction,
        1 => ArrayVerdict::Independent,
        2 => ArrayVerdict::Privatized {
            copy_in: r.boolean()?,
        },
        3 => {
            let test = get_pred(r)?;
            let with_privatization = r.boolean()?;
            ArrayVerdict::RuntimeTested {
                test,
                with_privatization,
            }
        }
        4 => {
            let dep = get_pred(r)?;
            let rejected = get_opt(r, |r| {
                let p = get_pred(r)?;
                let rr = get_reject(r)?;
                Some((p, rr))
            })?;
            ArrayVerdict::Blocking { dep, rejected }
        }
        _ => return None,
    };
    let n = r.count()?;
    let mut dep_pairs = Vec::with_capacity(n);
    for _ in 0..n {
        dep_pairs.push(get_pair(r)?);
    }
    let n = r.count()?;
    let mut priv_pairs = Vec::with_capacity(n);
    for _ in 0..n {
        priv_pairs.push(get_pair(r)?);
    }
    Some(ArrayEvidence {
        array,
        verdict,
        dep_pairs,
        priv_pairs,
    })
}

fn put_provenance(out: &mut Vec<u8>, p: &Provenance) {
    put_opt(out, &p.winner, |o, m| put_mechanism(o, *m));
    put_u32(out, p.arrays.len() as u32);
    for a in &p.arrays {
        put_array_evidence(out, a);
    }
    put_u32(out, p.scalars.len() as u32);
    for s in &p.scalars {
        put_var(out, s.scalar);
        put_u8(
            out,
            match s.verdict {
                ScalarVerdict::ExposedFlow => 0,
                ScalarVerdict::Privatized => 1,
                ScalarVerdict::Reduction => 2,
            },
        );
    }
    put_vars(out, &p.embedded);
    put_opt(out, &p.runtime_test, put_pred);
    put_opt(out, &p.budget, |o, b| put_u64(o, b.steps));
    put_u64(out, p.limit_overflows);
    put_u64(out, p.lat_overflow);
}

fn get_provenance(r: &mut Reader) -> Option<Provenance> {
    let winner = get_opt(r, get_mechanism)?;
    let n = r.count()?;
    let mut arrays = Vec::with_capacity(n);
    for _ in 0..n {
        arrays.push(get_array_evidence(r)?);
    }
    let n = r.count()?;
    let mut scalars = Vec::with_capacity(n);
    for _ in 0..n {
        let scalar = get_var(r)?;
        let verdict = match r.u8()? {
            0 => ScalarVerdict::ExposedFlow,
            1 => ScalarVerdict::Privatized,
            2 => ScalarVerdict::Reduction,
            _ => return None,
        };
        scalars.push(ScalarEvidence { scalar, verdict });
    }
    let n = r.count()?;
    let mut embedded = Vec::with_capacity(n);
    for _ in 0..n {
        embedded.push(get_var(r)?);
    }
    let runtime_test = get_opt(r, get_pred)?;
    let budget = get_opt(r, |r| Some(BudgetEvent { steps: r.u64()? }))?;
    let limit_overflows = r.u64()?;
    let lat_overflow = r.u64()?;
    Some(Provenance {
        winner,
        arrays,
        scalars,
        embedded,
        runtime_test,
        budget,
        limit_overflows,
        lat_overflow,
    })
}

fn put_report(out: &mut Vec<u8>, rep: &LoopReport) {
    put_u32(out, rep.id.0);
    put_opt(out, &rep.label, |o, s| put_str(o, s));
    put_str(out, &rep.proc);
    put_u64(out, rep.depth as u64);
    put_opt(out, &rep.not_candidate, |o, nc| {
        put_u8(
            o,
            match nc {
                NotCandidateReason::ReadIo => 0,
                NotCandidateReason::InternalExit => 1,
                NotCandidateReason::BudgetExhausted => 2,
            },
        )
    });
    match &rep.outcome {
        Outcome::Parallel => put_u8(out, 0),
        Outcome::ParallelIf(p) => {
            put_u8(out, 1);
            put_pred(out, p);
        }
        Outcome::Sequential => put_u8(out, 2),
    }
    put_u32(out, rep.privatized.len() as u32);
    for p in &rep.privatized {
        put_var(out, p.array);
        put_bool(out, p.copy_in);
        put_bool(out, p.copy_out);
    }
    put_vars(out, &rep.privatized_scalars);
    put_u32(out, rep.reductions.len() as u32);
    for red in &rep.reductions {
        put_var(out, red.target);
        put_bool(out, red.is_array);
        put_u8(
            out,
            match red.op {
                ReduceOp::Sum => 0,
                ReduceOp::Product => 1,
                ReduceOp::Min => 2,
                ReduceOp::Max => 3,
            },
        );
    }
    put_bool(out, rep.mechanisms.predicates);
    put_bool(out, rep.mechanisms.embedding);
    put_bool(out, rep.mechanisms.extraction);
    put_bool(out, rep.mechanisms.runtime_test);
    put_provenance(out, &rep.provenance);
}

fn get_report(r: &mut Reader) -> Option<LoopReport> {
    let id = LoopId(r.u32()?);
    let label = get_opt(r, |r| r.str())?;
    let proc = r.str()?;
    let depth = r.u64()? as usize;
    let not_candidate = get_opt(r, |r| {
        Some(match r.u8()? {
            0 => NotCandidateReason::ReadIo,
            1 => NotCandidateReason::InternalExit,
            2 => NotCandidateReason::BudgetExhausted,
            _ => return None,
        })
    })?;
    let outcome = match r.u8()? {
        0 => Outcome::Parallel,
        1 => Outcome::ParallelIf(get_pred(r)?),
        2 => Outcome::Sequential,
        _ => return None,
    };
    let n = r.count()?;
    let mut privatized = Vec::with_capacity(n);
    for _ in 0..n {
        let array = get_var(r)?;
        let copy_in = r.boolean()?;
        let copy_out = r.boolean()?;
        privatized.push(PrivArray {
            array,
            copy_in,
            copy_out,
        });
    }
    let n = r.count()?;
    let mut privatized_scalars = Vec::with_capacity(n);
    for _ in 0..n {
        privatized_scalars.push(get_var(r)?);
    }
    let n = r.count()?;
    let mut reductions = Vec::with_capacity(n);
    for _ in 0..n {
        let target = get_var(r)?;
        let is_array = r.boolean()?;
        let op = match r.u8()? {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Product,
            2 => ReduceOp::Min,
            3 => ReduceOp::Max,
            _ => return None,
        };
        reductions.push(Reduction {
            target,
            is_array,
            op,
        });
    }
    let mechanisms = Mechanisms {
        predicates: r.boolean()?,
        embedding: r.boolean()?,
        extraction: r.boolean()?,
        runtime_test: r.boolean()?,
    };
    let provenance = get_provenance(r)?;
    Some(LoopReport {
        id,
        label,
        proc,
        depth,
        not_candidate,
        outcome,
        privatized,
        privatized_scalars,
        reductions,
        mechanisms,
        provenance,
    })
}

// ------------------------------------------------------------------
// Store entry payloads
// ------------------------------------------------------------------

/// Payload of a memoized boolean lattice result. `overflow_delta` is the
/// number of omega cap-hit events the original computation recorded on
/// its thread; a store hit replays it via
/// [`padfa_omega::limit_stats::adopt_thread_overflows`] so per-loop
/// provenance counters stay bit-identical warm vs cold.
pub fn encode_bool_entry(value: bool, tier: Tier, overflow_delta: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    put_bool(&mut out, value);
    put_tier(&mut out, tier);
    put_u64(&mut out, overflow_delta);
    out
}

pub fn decode_bool_entry(buf: &[u8]) -> Option<(bool, Tier, u64)> {
    let mut r = Reader::new(buf);
    let value = r.boolean()?;
    let tier = get_tier(&mut r)?;
    let delta = r.u64()?;
    r.at_end().then_some((value, tier, delta))
}

/// Payload of a memoized region-valued lattice result (see
/// [`encode_bool_entry`] for `overflow_delta`).
pub fn encode_region_entry(d: &Disjunction, tier: Tier, overflow_delta: u64) -> Vec<u8> {
    let mut out = Vec::new();
    put_region(&mut out, d);
    put_tier(&mut out, tier);
    put_u64(&mut out, overflow_delta);
    out
}

pub fn decode_region_entry(buf: &[u8]) -> Option<(Disjunction, Tier, u64)> {
    let mut r = Reader::new(buf);
    let d = get_region(&mut r)?;
    let tier = get_tier(&mut r)?;
    let delta = r.u64()?;
    r.at_end().then_some((d, tier, delta))
}

/// Payload of one interprocedural summary plus the loop reports derived
/// while building it. Hitting this entry skips the procedure's analysis
/// entirely, so the reports must ride along.
pub fn encode_proc_entry(summary: &Summary, reports: &[LoopReport]) -> Vec<u8> {
    let mut out = Vec::new();
    put_summary(&mut out, summary);
    put_u32(&mut out, reports.len() as u32);
    for rep in reports {
        put_report(&mut out, rep);
    }
    out
}

pub fn decode_proc_entry(buf: &[u8]) -> Option<(Summary, Vec<LoopReport>)> {
    let mut r = Reader::new(buf);
    let summary = get_summary(&mut r)?;
    let n = r.count()?;
    let mut reports = Vec::with_capacity(n);
    for _ in 0..n {
        reports.push(get_report(&mut r)?);
    }
    r.at_end().then_some((summary, reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lin(pairs: &[(&str, i64)], k: i64) -> LinExpr {
        let mut e = LinExpr::constant(k);
        for &(n, c) in pairs {
            e.add_term(Var::new(n), c);
        }
        e
    }

    #[test]
    fn region_round_trip_is_bit_exact() {
        let s1 = System::from_raw_parts(
            vec![
                Constraint::geq0(lin(&[("i", 1), ("n", -1)], -1)),
                Constraint::eq0(lin(&[("j", 2)], 4)),
            ],
            false,
            false,
        );
        let s2 = System::from_raw_parts(vec![], true, false);
        let d = Disjunction::from_raw_parts(vec![s1, s2], false);
        let mut buf = Vec::new();
        put_region(&mut buf, &d);
        let mut r = Reader::new(&buf);
        let back = get_region(&mut r).unwrap();
        assert!(r.at_end());
        assert_eq!(back, d);
        assert_eq!(back.systems().len(), d.systems().len());
        assert_eq!(back.is_exact(), d.is_exact());
        for (a, b) in back.systems().iter().zip(d.systems()) {
            assert_eq!(a.constraints(), b.constraints());
        }
    }

    #[test]
    fn pred_round_trip_covers_all_variants() {
        let p = Pred::And(vec![
            Pred::Atom(Atom::Affine {
                expr: lin(&[("i", 1)], -3),
                kind: AtomKind::Geq,
            }),
            Pred::Or(vec![
                Pred::True,
                Pred::False,
                Pred::Atom(Atom::Opaque(BoolExpr::Cmp(
                    CmpOp::Ne,
                    Expr::Scalar(Var::new("x")),
                    Expr::RealLit(-0.0),
                ))),
            ]),
        ]);
        let mut buf = Vec::new();
        put_pred(&mut buf, &p);
        let back = get_pred(&mut Reader::new(&buf)).unwrap();
        assert_eq!(back, p);
        // -0.0 must survive (to_bits round-trip), not collapse to 0.0.
        let mut buf = Vec::new();
        put_expr(&mut buf, &Expr::RealLit(-0.0));
        let Some(Expr::RealLit(v)) = get_expr(&mut Reader::new(&buf)) else {
            panic!("decode failed");
        };
        assert!(v.is_sign_negative());
    }

    #[test]
    fn truncated_and_corrupt_buffers_decode_to_none() {
        let mut buf = Vec::new();
        put_region(
            &mut buf,
            &Disjunction::from_raw_parts(vec![System::from_raw_parts(vec![], false, false)], true),
        );
        put_tier(&mut buf, Tier::General);
        put_u64(&mut buf, 0);
        for cut in 0..buf.len() {
            assert!(decode_region_entry(&buf[..cut]).is_none(), "cut={cut}");
        }
        // Trailing garbage is corruption too.
        let mut extended = buf.clone();
        extended.push(0);
        assert!(decode_region_entry(&extended).is_none());
        // Unknown tag.
        assert!(get_pred(&mut Reader::new(&[9])).is_none());
        // Bit-flipped length fields must not request huge allocations.
        assert!(get_linexpr(&mut Reader::new(&[
            0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff
        ]))
        .is_none());
    }

    #[test]
    fn bool_entry_round_trip() {
        let buf = encode_bool_entry(true, Tier::Dense, 7);
        assert_eq!(decode_bool_entry(&buf), Some((true, Tier::Dense, 7)));
        assert!(decode_bool_entry(&buf[..buf.len() - 1]).is_none());
        let buf = encode_bool_entry(false, Tier::General, 0);
        assert_eq!(decode_bool_entry(&buf), Some((false, Tier::General, 0)));
    }

    #[test]
    fn system_dense_tag_round_trips() {
        // A simplify-built box system carries its dense cache through
        // the codec; a raw one without the cache stays without it.
        let dense = System::from_constraints([Constraint::geq0(lin(&[("i", 1)], -1))]);
        assert!(dense.has_dense());
        let mut buf = Vec::new();
        put_system(&mut buf, &dense);
        let back = get_system(&mut Reader::new(&buf)).unwrap();
        assert!(back.has_dense());
        assert_eq!(back, dense);

        let raw = System::from_raw_parts(dense.constraints().to_vec(), false, false);
        assert!(!raw.has_dense());
        let mut buf = Vec::new();
        put_system(&mut buf, &raw);
        let back = get_system(&mut Reader::new(&buf)).unwrap();
        assert!(!back.has_dense());
    }
}
