//! Append-only journal framing: record encoding, per-record checksums,
//! and the forgiving segment scanner.
//!
//! A segment is a byte stream of records:
//!
//! ```text
//! [magic u8 = 0xA7][kind u8][key u128 LE][len u32 LE][payload][checksum u64 LE]
//! ```
//!
//! The checksum (FNV-1a 64) covers `kind ‖ key ‖ len ‖ payload`, so any
//! single flipped bit in a record is detected. The scanner is built for
//! hostile input — a segment may end mid-record (crash during append) or
//! contain flipped bits anywhere:
//!
//! * a record whose frame is intact but whose checksum mismatches (or
//!   whose kind byte is unknown) is *quarantined individually* and the
//!   scan continues at the next record;
//! * a broken frame — wrong magic, a length field pointing past the end
//!   of the segment, a truncated tail — quarantines the remainder of the
//!   segment and stops, because record boundaries can no longer be
//!   trusted.
//!
//! Everything in this module is pure (bytes in, records out); file IO,
//! fsync/rename rotation, and quarantine sidecars live in the parent
//! module.

use super::hash;

/// Leading byte of every record frame.
pub const MAGIC: u8 = 0xA7;

/// Frame overhead: magic + kind + key + len (before payload).
const HEADER_LEN: usize = 1 + 1 + 16 + 4;
/// Trailing checksum.
const CHECKSUM_LEN: usize = 8;

/// Record types in a journal segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// First record of every segment: schema/codec version + `git_rev`.
    Header = 0,
    /// Boolean lattice result (`sys_empty`, `subset`, `implies`).
    Bool = 1,
    /// Region-valued lattice result (`subtract`, `intersect`, `union`,
    /// `project`).
    Region = 2,
    /// Interprocedural summary + derived loop reports.
    Proc = 3,
    /// Dependency edge: key = procedure IR hash, payload = a summary key
    /// that transitively depends on that procedure's IR.
    DepEdge = 4,
    /// Invalidation: the keyed entry is dead; later loads drop it.
    Tombstone = 5,
}

impl RecordKind {
    pub fn from_u8(v: u8) -> Option<RecordKind> {
        Some(match v {
            0 => RecordKind::Header,
            1 => RecordKind::Bool,
            2 => RecordKind::Region,
            3 => RecordKind::Proc,
            4 => RecordKind::DepEdge,
            5 => RecordKind::Tombstone,
            _ => return None,
        })
    }
}

/// FNV-1a 64 over the checksummed portion of a record.
fn checksum64(kind: u8, key: u128, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    };
    eat(kind);
    for b in key.to_le_bytes() {
        eat(b);
    }
    for b in (payload.len() as u32).to_le_bytes() {
        eat(b);
    }
    for &b in payload {
        eat(b);
    }
    h
}

/// Encode one record frame.
pub fn encode_record(kind: RecordKind, key: u128, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    out.push(MAGIC);
    out.push(kind as u8);
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&checksum64(kind as u8, key, payload).to_le_bytes());
    out
}

/// The segment header payload: codec version + the producing build.
pub fn encode_header_payload(git_rev: &str) -> Vec<u8> {
    let mut out = Vec::new();
    super::codec::put_u32(&mut out, hash::CODEC_VERSION);
    super::codec::put_str(&mut out, git_rev);
    out
}

/// Decode a header payload into `(codec_version, git_rev)`.
pub fn decode_header_payload(buf: &[u8]) -> Option<(u32, String)> {
    let mut r = super::codec::Reader::new(buf);
    let version = r.u32()?;
    let rev = r.str()?;
    r.at_end().then_some((version, rev))
}

/// One structurally valid, checksum-verified record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawRecord {
    pub kind: RecordKind,
    pub key: u128,
    pub payload: Vec<u8>,
}

/// Result of scanning one segment's bytes.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Verified records, in append order.
    pub records: Vec<RawRecord>,
    /// Byte ranges of quarantined content (corrupt records, the torn or
    /// untrustworthy tail).
    pub quarantined: Vec<(usize, usize)>,
    /// True when the scan stopped before the end of the buffer (broken
    /// frame / torn tail), false when every byte was accounted for.
    pub torn: bool,
}

impl ScanOutcome {
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && !self.torn
    }
}

/// Scan a segment, salvaging every verifiable record.
pub fn scan(bytes: &[u8]) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut pos = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        // A broken frame means record boundaries downstream are guesses;
        // quarantine the rest and stop.
        if remaining < HEADER_LEN + CHECKSUM_LEN || bytes[pos] != MAGIC {
            out.quarantined.push((pos, bytes.len()));
            out.torn = true;
            break;
        }
        let kind_byte = bytes[pos + 1];
        let key_bytes: [u8; 16] = match bytes[pos + 2..pos + 18].try_into() {
            Ok(k) => k,
            Err(_) => {
                out.quarantined.push((pos, bytes.len()));
                out.torn = true;
                break;
            }
        };
        let key = u128::from_le_bytes(key_bytes);
        let len_bytes: [u8; 4] = match bytes[pos + 18..pos + 22].try_into() {
            Ok(l) => l,
            Err(_) => {
                out.quarantined.push((pos, bytes.len()));
                out.torn = true;
                break;
            }
        };
        let len = u32::from_le_bytes(len_bytes) as usize;
        // A bit-flipped length would point past the segment end (or wrap);
        // that breaks the frame.
        if len > remaining - HEADER_LEN - CHECKSUM_LEN {
            out.quarantined.push((pos, bytes.len()));
            out.torn = true;
            break;
        }
        let payload = &bytes[pos + HEADER_LEN..pos + HEADER_LEN + len];
        let cksum_off = pos + HEADER_LEN + len;
        let stored: [u8; 8] = match bytes[cksum_off..cksum_off + CHECKSUM_LEN].try_into() {
            Ok(c) => c,
            Err(_) => {
                out.quarantined.push((pos, bytes.len()));
                out.torn = true;
                break;
            }
        };
        let end = cksum_off + CHECKSUM_LEN;
        let ok = u64::from_le_bytes(stored) == checksum64(kind_byte, key, payload);
        match (ok, RecordKind::from_u8(kind_byte)) {
            (true, Some(kind)) => out.records.push(RawRecord {
                kind,
                key,
                payload: payload.to_vec(),
            }),
            // Frame intact, content bad: quarantine just this record and
            // keep scanning.
            _ => out.quarantined.push((pos, end)),
        }
        pos = end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_segment() -> Vec<u8> {
        let mut seg = encode_record(RecordKind::Header, 0, &encode_header_payload("abc123"));
        seg.extend_from_slice(&encode_record(RecordKind::Bool, 42, &[1, 7, 0]));
        seg.extend_from_slice(&encode_record(RecordKind::Region, 77, b"payload-bytes"));
        seg.extend_from_slice(&encode_record(RecordKind::Tombstone, 42, &[]));
        seg
    }

    #[test]
    fn clean_segment_round_trips() {
        let seg = sample_segment();
        let out = scan(&seg);
        assert!(out.is_clean());
        assert_eq!(out.records.len(), 4);
        assert_eq!(out.records[1].kind, RecordKind::Bool);
        assert_eq!(out.records[1].key, 42);
        assert_eq!(out.records[1].payload, vec![1, 7, 0]);
        let (ver, rev) = decode_header_payload(&out.records[0].payload).unwrap();
        assert_eq!(ver, hash::CODEC_VERSION);
        assert_eq!(rev, "abc123");
    }

    #[test]
    fn truncation_quarantines_tail_keeps_prefix() {
        let seg = sample_segment();
        // Cut inside the third record.
        let first_two = encode_record(RecordKind::Header, 0, &encode_header_payload("abc123"))
            .len()
            + encode_record(RecordKind::Bool, 42, &[1, 7, 0]).len();
        let cut = &seg[..first_two + 5];
        let out = scan(cut);
        assert!(out.torn);
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.quarantined, vec![(first_two, cut.len())]);
    }

    #[test]
    fn payload_bitflip_quarantines_one_record() {
        let mut seg = sample_segment();
        let hdr = encode_record(RecordKind::Header, 0, &encode_header_payload("abc123")).len();
        // Flip a bit inside the Bool record's payload.
        seg[hdr + HEADER_LEN + 1] ^= 0x10;
        let out = scan(&seg);
        assert!(!out.torn);
        assert_eq!(out.records.len(), 3); // header, region, tombstone survive
        assert_eq!(out.quarantined.len(), 1);
        assert!(out.records.iter().all(|r| r.kind != RecordKind::Bool));
    }

    #[test]
    fn length_bitflip_quarantines_remainder() {
        let mut seg = sample_segment();
        let hdr = encode_record(RecordKind::Header, 0, &encode_header_payload("abc123")).len();
        // Set the Bool record's length field to a huge value.
        seg[hdr + 18] = 0xFF;
        seg[hdr + 19] = 0xFF;
        let out = scan(&seg);
        assert!(out.torn);
        assert_eq!(out.records.len(), 1); // only the header survives
        assert_eq!(out.quarantined, vec![(hdr, sample_segment().len())]);
    }

    #[test]
    fn every_single_bitflip_is_detected() {
        // Flip each bit of a small segment in turn: the scan must never
        // return the original record set unchanged, and must never panic.
        let seg = encode_record(RecordKind::Bool, 9, &[0, 1, 2, 3]);
        for byte in 0..seg.len() {
            for bit in 0..8 {
                let mut m = seg.clone();
                m[byte] ^= 1 << bit;
                let out = scan(&m);
                let intact = out.is_clean()
                    && out.records.len() == 1
                    && out.records[0].key == 9
                    && out.records[0].payload == vec![0, 1, 2, 3]
                    && out.records[0].kind == RecordKind::Bool;
                assert!(!intact, "flip at byte {byte} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn empty_segment_is_clean() {
        let out = scan(&[]);
        assert!(out.is_clean());
        assert!(out.records.is_empty());
    }
}
