//! Content hashing for store keys: a self-contained 128-bit FNV-1a,
//! structural hashing of procedure IR, and the Merkle-style key
//! derivation that makes the store content-addressed.
//!
//! Nothing here is cryptographic — the store defends against *accidental*
//! corruption and stale entries, not adversaries. 128-bit FNV-1a over the
//! canonical byte encoding makes key collisions astronomically unlikely
//! for the population sizes involved (thousands of distinct operands per
//! corpus run), while staying dependency-free and cheap on the
//! memo-miss-only path where keys are computed.
//!
//! ## Key structure
//!
//! Every key mixes in [`CODEC_VERSION`] and the session's *options
//! fingerprint* ([`options_fingerprint`]): lattice results depend on the
//! analysis options ([`crate::Options`]) and the `omega` limits, so two
//! sessions with different options can never alias each other's entries.
//!
//! Procedure keys are Merkle-style ([`proc_key`]): the key of a procedure
//! hashes its own IR hash *and the keys of all its callees*, so editing
//! one procedure automatically invalidates the stored summaries of every
//! transitive caller — they simply hash to new keys — without any
//! explicit invalidation pass. (Explicit dependency records exist too,
//! for eager garbage collection; see [`super::Store`].)

use crate::options::Options;
use padfa_ir::ast::{Arg, Block, BoolExpr, Expr, LValue, ParamTy, Procedure, Stmt};
use padfa_omega::Var;

/// Version of the on-disk entry codec and of this hashing scheme. Bump
/// whenever either changes meaning: old entries then hash to different
/// keys / fail the segment header check instead of decoding wrongly.
/// v2: systems carry a dense-tier tag and bool/region entries record
/// the answering tier, so warm-store replays restore the same tier
/// attribution as the cold run that produced them.
pub const CODEC_VERSION: u32 = 2;

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Incremental 128-bit FNV-1a hasher.
#[derive(Clone)]
pub struct Hasher128 {
    state: u128,
}

impl Default for Hasher128 {
    fn default() -> Hasher128 {
        Hasher128::new()
    }
}

impl Hasher128 {
    pub fn new() -> Hasher128 {
        Hasher128 { state: FNV_OFFSET }
    }

    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u128::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_u128(&mut self, v: u128) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.write(&v.to_le_bytes());
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(u8::from(v));
    }

    /// Length-prefixed, so `("ab", "c")` and `("a", "bc")` differ.
    pub fn write_str(&mut self, s: &str) {
        self.write_u32(s.len() as u32);
        self.write(s.as_bytes());
    }

    pub fn finish(&self) -> u128 {
        self.state
    }
}

/// One-shot FNV-1a 128 over a byte slice.
pub fn fnv128(bytes: &[u8]) -> u128 {
    let mut h = Hasher128::new();
    h.write(bytes);
    h.finish()
}

/// Fingerprint of everything in [`Options`] that a lattice result or a
/// procedure summary depends on. The work budget is deliberately
/// *excluded*: it never changes a result (exhaustion degrades via a
/// separate path that is gated off the store entirely), and including it
/// would needlessly split the cache between budgeted and unbudgeted
/// sessions. `spawn_threshold` is excluded for the same reason: the
/// scheduler's cutoff decides where a task runs, never what it
/// computes, so sessions at different thresholds can share entries.
pub fn options_fingerprint(opts: &Options) -> u128 {
    let mut h = Hasher128::new();
    h.write_u32(CODEC_VERSION);
    h.write_u8(match opts.variant {
        crate::options::Variant::Base => 0,
        crate::options::Variant::Guarded => 1,
        crate::options::Variant::Predicated => 2,
    });
    h.write_bool(opts.embedding);
    h.write_bool(opts.extraction);
    h.write_bool(opts.runtime_tests);
    h.write_u64(opts.max_pieces as u64);
    h.write_u32(opts.test_cost_budget);
    h.write_u64(opts.limits.max_constraints as u64);
    h.write_u64(opts.limits.max_disjuncts as u64);
    // Forced-general sessions must not share entries with dense-enabled
    // ones: stored entries record the answering tier, and a replay in
    // the other mode would restore the wrong attribution.
    h.write_bool(padfa_omega::dense::force_general());
    h.finish()
}

/// Marker hashed in place of the key of an *undefined* callee (a call to
/// a procedure the program does not declare summarizes as
/// [`crate::Summary::empty`], which is a fixed function, so a fixed
/// marker suffices).
pub const UNDEFINED_CALLEE: u128 = 0x7061_6466_6121_756e_6465_6669_6e65_6421;

/// Merkle-style content key of one procedure: options fingerprint, the
/// procedure's own structural IR hash, and the keys of its direct
/// callees in syntactic call order (which the summarization consumes in
/// the same order). A change anywhere in the transitive callee IR
/// changes this key.
pub fn proc_key(options_fp: u128, ir_hash: u128, callee_keys: &[u128]) -> u128 {
    let mut h = Hasher128::new();
    h.write_u8(b'P');
    h.write_u128(options_fp);
    h.write_u128(ir_hash);
    h.write_u32(callee_keys.len() as u32);
    for &k in callee_keys {
        h.write_u128(k);
    }
    h.finish()
}

/// Structural hash of one procedure's IR, including loop ids and labels.
///
/// Loop ids are program-global (assigned by the parser in program
/// order), so the *same procedure text* embedded in two different
/// programs hashes differently when preceded by different loop counts.
/// That is deliberate and sound: loop ids appear verbatim in the stored
/// [`crate::LoopReport`]s, so entries must not be shared across programs
/// that number loops differently.
pub fn hash_procedure(proc: &Procedure) -> u128 {
    let mut h = Hasher128::new();
    h.write_str(&proc.name);
    h.write_u32(proc.params.len() as u32);
    for p in &proc.params {
        hash_var(&mut h, p.name);
        match &p.ty {
            ParamTy::Scalar(ty) => {
                h.write_u8(0);
                h.write_u8(*ty as u8);
            }
            ParamTy::Array { dims, ty } => {
                h.write_u8(1);
                h.write_u32(dims.len() as u32);
                for d in dims {
                    hash_expr(&mut h, d);
                }
                h.write_u8(*ty as u8);
            }
        }
    }
    h.write_u32(proc.arrays.len() as u32);
    for a in &proc.arrays {
        hash_var(&mut h, a.name);
        h.write_u32(a.dims.len() as u32);
        for d in &a.dims {
            hash_expr(&mut h, d);
        }
        h.write_u8(a.ty as u8);
    }
    h.write_u32(proc.scalars.len() as u32);
    for s in &proc.scalars {
        hash_var(&mut h, s.name);
        h.write_u8(s.ty as u8);
        match &s.init {
            None => h.write_u8(0),
            Some(e) => {
                h.write_u8(1);
                hash_expr(&mut h, e);
            }
        }
    }
    hash_block(&mut h, &proc.body);
    h.finish()
}

fn hash_var(h: &mut Hasher128, v: Var) {
    h.write_str(&v.name());
}

fn hash_block(h: &mut Hasher128, b: &Block) {
    h.write_u32(b.stmts.len() as u32);
    for s in &b.stmts {
        hash_stmt(h, s);
    }
}

fn hash_stmt(h: &mut Hasher128, s: &Stmt) {
    match s {
        Stmt::Assign { lhs, rhs } => {
            h.write_u8(0);
            match lhs {
                LValue::Scalar(v) => {
                    h.write_u8(0);
                    hash_var(h, *v);
                }
                LValue::Elem(a, subs) => {
                    h.write_u8(1);
                    hash_var(h, *a);
                    h.write_u32(subs.len() as u32);
                    for e in subs {
                        hash_expr(h, e);
                    }
                }
            }
            hash_expr(h, rhs);
        }
        Stmt::If {
            cond,
            then_blk,
            else_blk,
        } => {
            h.write_u8(1);
            hash_bool(h, cond);
            hash_block(h, then_blk);
            hash_block(h, else_blk);
        }
        Stmt::For(l) => {
            h.write_u8(2);
            h.write_u32(l.id.0);
            match &l.label {
                None => h.write_u8(0),
                Some(lab) => {
                    h.write_u8(1);
                    h.write_str(lab);
                }
            }
            hash_var(h, l.var);
            hash_expr(h, &l.lo);
            hash_expr(h, &l.hi);
            h.write_i64(l.step);
            hash_block(h, &l.body);
        }
        Stmt::Call { callee, args } => {
            h.write_u8(3);
            h.write_str(callee);
            h.write_u32(args.len() as u32);
            for a in args {
                match a {
                    Arg::Scalar(e) => {
                        h.write_u8(0);
                        hash_expr(h, e);
                    }
                    Arg::Array(v) => {
                        h.write_u8(1);
                        hash_var(h, *v);
                    }
                }
            }
        }
        Stmt::Read(v) => {
            h.write_u8(4);
            hash_var(h, *v);
        }
        Stmt::Print(e) => {
            h.write_u8(5);
            hash_expr(h, e);
        }
        Stmt::ExitWhen(c) => {
            h.write_u8(6);
            hash_bool(h, c);
        }
    }
}

fn hash_expr(h: &mut Hasher128, e: &Expr) {
    match e {
        Expr::IntLit(v) => {
            h.write_u8(0);
            h.write_i64(*v);
        }
        Expr::RealLit(v) => {
            h.write_u8(1);
            h.write_u64(v.to_bits());
        }
        Expr::Scalar(v) => {
            h.write_u8(2);
            hash_var(h, *v);
        }
        Expr::Elem(a, subs) => {
            h.write_u8(3);
            hash_var(h, *a);
            h.write_u32(subs.len() as u32);
            for s in subs {
                hash_expr(h, s);
            }
        }
        Expr::Add(a, b) => hash_bin(h, 4, a, b),
        Expr::Sub(a, b) => hash_bin(h, 5, a, b),
        Expr::Mul(a, b) => hash_bin(h, 6, a, b),
        Expr::Div(a, b) => hash_bin(h, 7, a, b),
        Expr::Mod(a, b) => hash_bin(h, 8, a, b),
        Expr::Neg(a) => {
            h.write_u8(9);
            hash_expr(h, a);
        }
        Expr::Call(intr, args) => {
            h.write_u8(10);
            h.write_u8(*intr as u8);
            h.write_u32(args.len() as u32);
            for a in args {
                hash_expr(h, a);
            }
        }
    }
}

fn hash_bin(h: &mut Hasher128, tag: u8, a: &Expr, b: &Expr) {
    h.write_u8(tag);
    hash_expr(h, a);
    hash_expr(h, b);
}

fn hash_bool(h: &mut Hasher128, b: &BoolExpr) {
    match b {
        BoolExpr::Lit(v) => {
            h.write_u8(0);
            h.write_bool(*v);
        }
        BoolExpr::Cmp(op, a, c) => {
            h.write_u8(1);
            h.write_u8(*op as u8);
            hash_expr(h, a);
            hash_expr(h, c);
        }
        BoolExpr::And(a, c) => {
            h.write_u8(2);
            hash_bool(h, a);
            hash_bool(h, c);
        }
        BoolExpr::Or(a, c) => {
            h.write_u8(3);
            hash_bool(h, a);
            hash_bool(h, c);
        }
        BoolExpr::Not(a) => {
            h.write_u8(4);
            hash_bool(h, a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv128(b""), FNV_OFFSET);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
        assert_ne!(fnv128(b"ab"), fnv128(b"ba"));
        // Known reference value for FNV-1a 128 of "a".
        let mut h = Hasher128::new();
        h.write_u8(b'a');
        assert_eq!(h.finish(), fnv128(b"a"));
    }

    #[test]
    fn length_prefix_disambiguates_strings() {
        let mut a = Hasher128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Hasher128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn procedure_hash_tracks_ir_changes() {
        let p1 = parse_program("proc m(n: int) { array a[10]; for i = 1 to n { a[i] = 1.0; } }")
            .unwrap();
        let p2 = parse_program("proc m(n: int) { array a[10]; for i = 1 to n { a[i] = 2.0; } }")
            .unwrap();
        let p3 = parse_program("proc m(n: int) { array a[10]; for i = 1 to n { a[i] = 1.0; } }")
            .unwrap();
        let h1 = hash_procedure(&p1.procedures[0]);
        assert_ne!(h1, hash_procedure(&p2.procedures[0]));
        assert_eq!(h1, hash_procedure(&p3.procedures[0]));
    }

    #[test]
    fn merkle_key_depends_on_callees() {
        let fp = options_fingerprint(&Options::predicated());
        let k1 = proc_key(fp, 1, &[10, 20]);
        assert_ne!(k1, proc_key(fp, 1, &[10, 21]));
        assert_ne!(k1, proc_key(fp, 2, &[10, 20]));
        assert_ne!(k1, proc_key(fp ^ 1, 1, &[10, 20]));
        assert_eq!(k1, proc_key(fp, 1, &[10, 20]));
    }

    #[test]
    fn options_fingerprint_separates_variants() {
        let p = options_fingerprint(&Options::predicated());
        let b = options_fingerprint(&Options::base());
        let g = options_fingerprint(&Options::guarded());
        assert_ne!(p, b);
        assert_ne!(p, g);
        assert_ne!(b, g);
        // The budget must NOT split the cache.
        let budgeted = Options::predicated().with_budget(crate::budget::WorkBudget::steps(10));
        assert_eq!(p, options_fingerprint(&budgeted));
        // Neither may the spawn threshold: it only moves work between
        // threads.
        let inline_all = Options::predicated().with_spawn_threshold(u64::MAX);
        let spawn_all = Options::predicated().with_spawn_threshold(0);
        assert_eq!(p, options_fingerprint(&inline_all));
        assert_eq!(p, options_fingerprint(&spawn_all));
    }
}
