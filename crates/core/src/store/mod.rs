//! Crash-safe persistent memo store.
//!
//! A content-addressed on-disk cache mapping hashes of procedure IR to
//! interprocedural summaries (plus their derived loop reports) and
//! hashes of canonicalized lattice-query operands to lattice results.
//! [`crate::AnalysisSession`] consults it on memo misses and writes
//! results back through an append-only journal; a warm store lets a
//! corpus rerun skip nearly all analysis work while producing
//! **bit-identical** output.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   seg-0000.log    sealed journal segments (immutable once renamed)
//!   seg-0001.log
//!   active.tmp      the segment currently being appended
//!   lock            pid of the process holding the store
//!   corrupt/        quarantined bytes (torn tails, checksum mismatches)
//! ```
//!
//! Appends go to `active.tmp`; sealing flushes, fsyncs, and *renames*
//! it to the next `seg-NNNN.log` — the only atomic step, so a crash at
//! any point leaves either a sealed segment or a salvageable/quarantinable
//! tmp, never a half-renamed segment. Each segment opens with a
//! [`journal::RecordKind::Header`] record carrying the codec version and
//! the producing `git_rev`; segments from another build are deleted as
//! stale on open (cache hygiene — results could legitimately differ
//! across builds).
//!
//! ## Failure model — sound graceful degradation
//!
//! The store can *never* fail an analysis run or change its output:
//!
//! * checksum mismatch / torn tail / undecodable payload → the bytes are
//!   quarantined into `corrupt/`, counted, reported as a typed
//!   [`StoreError::Corrupt`] warning, and the key falls through to
//!   recomputation;
//! * any IO error on open/read/lock → the store disables itself
//!   ([`StoreError::Io`] / [`StoreError::Locked`] warning) and the
//!   session runs in-memory-only;
//! * any IO error on append/seal → writes stop ([`StoreError::Io`]
//!   warning) while already-loaded entries keep serving reads.
//!
//! Every failure path is exercised deterministically by the
//! [`faults::IoFaultPlan`] injection layer (`--inject store-write-fail`,
//! `store-read-fail`, `store-torn-write`, `store-bitflip`).
//!
//! ## Invalidation
//!
//! Keys are Merkle-style over procedure IR ([`hash::proc_key`]), so an
//! edited procedure *automatically* misses along with every transitive
//! caller. Additionally, `DepEdge` records persist the reverse map
//! (procedure IR hash → dependent summary keys), so
//! [`Store::invalidate_procedure`] can eagerly tombstone everything a
//! procedure's change invalidates without waiting for natural eviction.

pub mod codec;
pub mod faults;
pub mod hash;
pub mod journal;

pub use faults::{IoFaultKind, IoFaultPlan, IoFaultSpec};
pub use hash::{hash_procedure, options_fingerprint, proc_key, CODEC_VERSION, UNDEFINED_CALLEE};

use crate::error::StoreError;
use crate::report::LoopReport;
use crate::summary::Summary;
use journal::{RawRecord, RecordKind};
use padfa_omega::sync::{lock, read, write};
use padfa_omega::{Disjunction, Tier};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io::{Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// Rotation threshold for the active segment (bytes). Small enough that
/// a crash loses at most one modest tail, large enough that a corpus run
/// produces a handful of segments, not thousands.
pub const DEFAULT_MAX_SEGMENT_BYTES: u64 = 4 << 20;

/// Bounded retry policy for *transient* store IO errors. A long-lived
/// server must not lose persistence forever because one write hit a
/// blip (EINTR, transient ENOSPC, a slow NFS hiccup): each failing
/// read/write is retried with exponential backoff before the store
/// degrades. Crash-shaped faults (torn writes) are never retried — they
/// model the process dying, not the disk stuttering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry, capped at 1s.
    pub backoff_ms: u64,
}

impl RetryPolicy {
    /// Disable retries entirely (first failure degrades, as before).
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_ms: 0,
        }
    }

    /// Backoff to sleep after the `attempt`-th failure (1-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let ms = self
            .backoff_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(10))
            .min(1000);
        Duration::from_millis(ms)
    }
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            backoff_ms: 10,
        }
    }
}

/// Injectable backoff sleep, so tests drive retries with a deterministic
/// recorded clock instead of real wall time.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// Configuration for [`Store::open`].
#[derive(Clone)]
pub struct StoreConfig {
    /// Store directory (created if absent).
    pub dir: PathBuf,
    /// Build identity stamped into segment headers; segments written by
    /// a different build are discarded as stale.
    pub git_rev: String,
    /// Deterministic IO fault plan (empty in production).
    pub faults: IoFaultPlan,
    /// Active-segment rotation threshold.
    pub max_segment_bytes: u64,
    /// Retry policy for transient IO errors.
    pub retry: RetryPolicy,
    /// Backoff sleep (`None` = real `thread::sleep`).
    pub sleeper: Option<Sleeper>,
}

impl std::fmt::Debug for StoreConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreConfig")
            .field("dir", &self.dir)
            .field("git_rev", &self.git_rev)
            .field("faults", &self.faults)
            .field("max_segment_bytes", &self.max_segment_bytes)
            .field("retry", &self.retry)
            .field("sleeper", &self.sleeper.is_some())
            .finish()
    }
}

impl StoreConfig {
    pub fn new(dir: impl Into<PathBuf>, git_rev: impl Into<String>) -> StoreConfig {
        StoreConfig {
            dir: dir.into(),
            git_rev: git_rev.into(),
            faults: IoFaultPlan::none(),
            max_segment_bytes: DEFAULT_MAX_SEGMENT_BYTES,
            retry: RetryPolicy::default(),
            sleeper: None,
        }
    }

    pub fn with_faults(mut self, faults: IoFaultPlan) -> StoreConfig {
        self.faults = faults;
        self
    }

    pub fn with_retry(mut self, retry: RetryPolicy) -> StoreConfig {
        self.retry = retry;
        self
    }

    pub fn with_sleeper(mut self, sleeper: Sleeper) -> StoreConfig {
        self.sleeper = Some(sleeper);
        self
    }
}

/// Point-in-time store counters (all zeros for an absent store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStatsSnapshot {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries written back this session.
    pub puts: u64,
    /// Entries/segment tails quarantined to `corrupt/`.
    pub quarantined: u64,
    /// Segments discarded for codec-version or `git_rev` mismatch.
    pub stale_segments: u64,
    /// Records salvaged from a crashed `active.tmp`.
    pub salvaged: u64,
    /// Entries tombstoned by [`Store::invalidate_procedure`].
    pub invalidated: u64,
    /// Entries loaded from sealed segments at open.
    pub loaded: u64,
    /// Retry attempts performed against transient IO errors (each one
    /// either recovered persistence or counted toward giving up).
    pub retries: u64,
    /// True when the store disabled itself entirely (reads and writes).
    pub degraded: bool,
    /// True when only persistence stopped (reads keep serving).
    pub writes_degraded: bool,
}

impl StoreStatsSnapshot {
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of store lookups served from disk (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }
}

/// State of the segment currently being appended.
struct ActiveSeg {
    file: fs::File,
    bytes: u64,
}

/// Journal writer state, behind one mutex so appends and rotation are
/// atomic with respect to each other (and the write-op fault counter
/// advances deterministically under contention).
struct JournalState {
    active: Option<ActiveSeg>,
    next_seg: u32,
    write_ops: u64,
}

/// The persistent memo store. Cheap shared handle: wrap in `Arc` and
/// clone across sessions/threads; all mutation is interior.
pub struct Store {
    dir: PathBuf,
    git_rev: String,
    faults: IoFaultPlan,
    max_segment_bytes: u64,
    retry: RetryPolicy,
    sleeper: Sleeper,
    /// key → latest record for it (payload decoded lazily on get).
    index: RwLock<HashMap<u128, (RecordKind, Vec<u8>)>>,
    /// procedure IR hash → summary keys depending on it.
    deps: Mutex<HashMap<u128, Vec<u128>>>,
    journal: Mutex<JournalState>,
    /// Full degrade: serve nothing, persist nothing.
    disabled: AtomicBool,
    /// Write-side degrade: keep serving loaded entries, stop persisting.
    writes_disabled: AtomicBool,
    /// Whether this process owns `<dir>/lock` (and must remove it).
    holds_lock: AtomicBool,
    warnings: Mutex<Vec<StoreError>>,
    quarantine_seq: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    quarantined: AtomicU64,
    stale_segments: AtomicU64,
    salvaged: AtomicU64,
    invalidated: AtomicU64,
    loaded: AtomicU64,
    retries: AtomicU64,
}

impl Store {
    /// Open (or create) the store at `config.dir`. Infallible by design:
    /// any failure yields a disabled store plus typed warnings, never an
    /// error the analysis has to handle.
    pub fn open(config: StoreConfig) -> Store {
        let store = Store {
            dir: config.dir,
            git_rev: config.git_rev,
            faults: config.faults,
            max_segment_bytes: config.max_segment_bytes.max(1),
            retry: RetryPolicy {
                max_attempts: config.retry.max_attempts.max(1),
                ..config.retry
            },
            sleeper: config
                .sleeper
                .unwrap_or_else(|| Arc::new(|d: Duration| std::thread::sleep(d))),
            index: RwLock::new(HashMap::new()),
            deps: Mutex::new(HashMap::new()),
            journal: Mutex::new(JournalState {
                active: None,
                next_seg: 0,
                write_ops: 0,
            }),
            disabled: AtomicBool::new(false),
            writes_disabled: AtomicBool::new(false),
            holds_lock: AtomicBool::new(false),
            warnings: Mutex::new(Vec::new()),
            quarantine_seq: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            stale_segments: AtomicU64::new(0),
            salvaged: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            loaded: AtomicU64::new(0),
            retries: AtomicU64::new(0),
        };
        if let Err(e) = store.load() {
            store.disabled.store(true, Ordering::Relaxed);
            store.warn(e);
        }
        store
    }

    /// True while the store serves reads (not fully degraded).
    pub fn enabled(&self) -> bool {
        !self.disabled.load(Ordering::Relaxed)
    }

    fn warn(&self, e: StoreError) {
        // Every store degradation funnels through here — mirror it
        // into the flight ring so a degraded request is attributable
        // post-hoc without scraping stderr.
        crate::flight::instant(crate::flight::EventKind::StoreDegraded, &e.to_string(), 1);
        lock(&self.warnings).push(e);
    }

    /// Drain the typed warnings accumulated so far (drivers print them).
    pub fn take_warnings(&self) -> Vec<StoreError> {
        std::mem::take(&mut lock(&self.warnings))
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> StoreStatsSnapshot {
        StoreStatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            stale_segments: self.stale_segments.load(Ordering::Relaxed),
            salvaged: self.salvaged.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            loaded: self.loaded.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            degraded: self.disabled.load(Ordering::Relaxed),
            writes_degraded: self.writes_disabled.load(Ordering::Relaxed),
        }
    }

    // --------------------------------------------------------------
    // Open-time loading
    // --------------------------------------------------------------

    fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            path: path.display().to_string(),
            msg: e.to_string(),
        }
    }

    fn load(&self) -> Result<(), StoreError> {
        fs::create_dir_all(&self.dir).map_err(|e| Self::io_err("open", &self.dir, &e))?;
        let corrupt = self.dir.join("corrupt");
        fs::create_dir_all(&corrupt).map_err(|e| Self::io_err("open", &corrupt, &e))?;
        self.acquire_lock()?;

        // Sealed segments, in append (= filename) order.
        let mut segs: Vec<PathBuf> = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| Self::io_err("open", &self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| Self::io_err("open", &self.dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("seg-") && name.ends_with(".log") {
                segs.push(entry.path());
            }
        }
        segs.sort();
        let mut read_ops = 0u64;
        let mut next_seg = 0u32;
        for path in &segs {
            if let Some(n) = seg_number(path) {
                next_seg = next_seg.max(n + 1);
            }
            let bytes = self.faulted_read(path, &mut read_ops)?;
            self.absorb_segment(path, bytes, false);
        }

        // Salvage a crashed active segment, if any.
        let tmp = self.dir.join("active.tmp");
        if tmp.exists() {
            let bytes = self.faulted_read(&tmp, &mut read_ops)?;
            next_seg = self.salvage_active(&tmp, bytes, next_seg)?;
        }
        lock(&self.journal).next_seg = next_seg;
        Ok(())
    }

    /// Read a file with read-side fault injection applied. Transient
    /// failures (injected or real) are retried with backoff before the
    /// error propagates; each attempt advances the fault-op counter, so
    /// a single armed fault is survived while a burst of
    /// `max_attempts` consecutive faults still degrades.
    fn faulted_read(&self, path: &Path, read_ops: &mut u64) -> Result<Vec<u8>, StoreError> {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            *read_ops += 1;
            let result = match self.faults.read_fault(*read_ops) {
                Some(IoFaultKind::ReadFail) => Err(StoreError::Io {
                    op: "read",
                    path: path.display().to_string(),
                    msg: "injected read failure".into(),
                }),
                Some(IoFaultKind::BitFlip) => {
                    match fs::read(path) {
                        Ok(mut bytes) => {
                            // Silent corruption, not an error: checksums
                            // catch it downstream, retrying is pointless.
                            faults::flip_bit(&mut bytes, *read_ops);
                            Ok(bytes)
                        }
                        Err(e) => Err(Self::io_err("read", path, &e)),
                    }
                }
                _ => fs::read(path).map_err(|e| Self::io_err("read", path, &e)),
            };
            match result {
                Ok(bytes) => return Ok(bytes),
                Err(e) => {
                    if attempt >= self.retry.max_attempts {
                        return Err(e);
                    }
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    crate::flight::instant(
                        crate::flight::EventKind::StoreRetry,
                        "read",
                        attempt.into(),
                    );
                    (self.sleeper)(self.retry.backoff(attempt));
                }
            }
        }
    }

    /// Validate and index one sealed segment's bytes. Stale or headerless
    /// segments are deleted; corrupt ranges are quarantined.
    fn absorb_segment(&self, path: &Path, bytes: Vec<u8>, salvaged: bool) {
        let scan = journal::scan(&bytes);
        let valid_header = scan.records.first().is_some_and(|r| {
            r.kind == RecordKind::Header
                && journal::decode_header_payload(&r.payload)
                    .is_some_and(|(v, rev)| v == hash::CODEC_VERSION && rev == self.git_rev)
        });
        if !valid_header {
            // Another build's cache (or a destroyed header): results may
            // legitimately differ, so the whole segment is stale.
            self.stale_segments.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(path);
            return;
        }
        if !scan.is_clean() {
            self.quarantine_bytes(&bytes, &scan.quarantined, path, "checksum/frame failure");
        }
        for rec in &scan.records {
            if salvaged && rec.kind != RecordKind::Header {
                self.salvaged.fetch_add(1, Ordering::Relaxed);
            }
            self.apply_record(rec);
        }
    }

    fn apply_record(&self, rec: &RawRecord) {
        match rec.kind {
            RecordKind::Header => {}
            RecordKind::Bool | RecordKind::Region | RecordKind::Proc => {
                self.loaded.fetch_add(1, Ordering::Relaxed);
                write(&self.index).insert(rec.key, (rec.kind, rec.payload.clone()));
            }
            RecordKind::DepEdge => {
                let mut r = codec::Reader::new(&rec.payload);
                if let Some(dep_key) = r.u128() {
                    if r.at_end() {
                        lock(&self.deps).entry(rec.key).or_default().push(dep_key);
                    }
                }
            }
            RecordKind::Tombstone => {
                write(&self.index).remove(&rec.key);
            }
        }
    }

    /// Seal the valid records of a crashed `active.tmp` into a proper
    /// segment and quarantine whatever was torn.
    fn salvage_active(&self, tmp: &Path, bytes: Vec<u8>, next_seg: u32) -> Result<u32, StoreError> {
        let scan = journal::scan(&bytes);
        let valid_header = scan.records.first().is_some_and(|r| {
            r.kind == RecordKind::Header
                && journal::decode_header_payload(&r.payload)
                    .is_some_and(|(v, rev)| v == hash::CODEC_VERSION && rev == self.git_rev)
        });
        if !scan.is_clean() {
            self.quarantine_bytes(&bytes, &scan.quarantined, tmp, "torn active segment");
        }
        let mut next_seg = next_seg;
        if valid_header && scan.records.len() > 1 {
            // Re-encode only the verified records into a sealed segment
            // (write-to-temp + fsync + rename).
            let mut sealed = journal::encode_record(
                RecordKind::Header,
                0,
                &journal::encode_header_payload(&self.git_rev),
            );
            for rec in &scan.records[1..] {
                sealed.extend_from_slice(&journal::encode_record(rec.kind, rec.key, &rec.payload));
            }
            let staging = self.dir.join("salvage.tmp");
            let seg_path = self.dir.join(format!("seg-{next_seg:04}.log"));
            let write_sealed = || -> std::io::Result<()> {
                let mut f = fs::File::create(&staging)?;
                f.write_all(&sealed)?;
                f.sync_all()?;
                fs::rename(&staging, &seg_path)
            };
            write_sealed().map_err(|e| Self::io_err("seal", &seg_path, &e))?;
            next_seg += 1;
            for rec in &scan.records {
                if rec.kind != RecordKind::Header {
                    self.salvaged.fetch_add(1, Ordering::Relaxed);
                }
                self.apply_record(rec);
            }
        }
        let _ = fs::remove_file(tmp);
        Ok(next_seg)
    }

    /// Move corrupt byte ranges into the `corrupt/` sidecar and record
    /// the typed warning.
    fn quarantine_bytes(
        &self,
        bytes: &[u8],
        ranges: &[(usize, usize)],
        origin: &Path,
        detail: &str,
    ) {
        self.quarantined
            .fetch_add(ranges.len() as u64, Ordering::Relaxed);
        crate::flight::instant(
            crate::flight::EventKind::StoreQuarantined,
            detail,
            ranges.len() as u64,
        );
        let seq = self.quarantine_seq.fetch_add(1, Ordering::Relaxed);
        let sidecar =
            self.dir
                .join("corrupt")
                .join(format!("q-{}-{}.bin", std::process::id(), seq));
        let mut payload = Vec::new();
        for &(a, b) in ranges {
            if let Some(slice) = bytes.get(a..b) {
                payload.extend_from_slice(slice);
            }
        }
        let _ = fs::write(&sidecar, &payload); // best-effort sidecar
        self.warn(StoreError::Corrupt {
            path: format!("{} -> {}", origin.display(), sidecar.display()),
            detail: detail.to_string(),
        });
    }

    /// Take the store lock, refusing (with degradation) when a live
    /// process holds it. A lock left by a dead process is stale and
    /// reclaimed — and so is one whose pid was *recycled*: the lock file
    /// records the opener's process start time alongside its pid, so a
    /// new process that happens to wear a dead opener's pid no longer
    /// wedges every future open into in-memory-only degradation.
    fn acquire_lock(&self) -> Result<(), StoreError> {
        let path = self.dir.join("lock");
        if let Ok(text) = fs::read_to_string(&path) {
            let mut words = text.split_whitespace();
            if let Some(Ok(pid)) = words.next().map(str::parse::<u32>) {
                let recorded_start = words.next().and_then(|w| w.parse::<u64>().ok());
                if pid != std::process::id() && holder_is_live(pid, recorded_start) {
                    return Err(StoreError::Locked {
                        path: path.display().to_string(),
                        pid,
                    });
                }
            }
        }
        let me = std::process::id();
        let stamp = match proc_start_time(me) {
            Some(start) => format!("{me} {start}\n"),
            None => format!("{me}\n"),
        };
        fs::write(&path, stamp).map_err(|e| Self::io_err("lock", &path, &e))?;
        self.holds_lock.store(true, Ordering::Relaxed);
        Ok(())
    }

    // --------------------------------------------------------------
    // Reads
    // --------------------------------------------------------------

    fn get_entry(&self, key: u128, want: RecordKind) -> Option<Vec<u8>> {
        if self.disabled.load(Ordering::Relaxed) {
            return None;
        }
        let entry = read(&self.index).get(&key).cloned();
        match entry {
            Some((kind, payload)) if kind == want => Some(payload),
            Some((_, payload)) => {
                // A key aliasing two kinds means the entry cannot be
                // trusted (kind tags are hashed into keys).
                self.drop_corrupt_entry(key, &payload, "record kind mismatch");
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Quarantine an entry whose payload failed to decode, tombstone it,
    /// and fall through to recomputation.
    fn drop_corrupt_entry(&self, key: u128, payload: &[u8], detail: &str) {
        write(&self.index).remove(&key);
        self.quarantine_bytes(
            payload,
            &[(0, payload.len())],
            &self.dir.join("index"),
            detail,
        );
        self.append(RecordKind::Tombstone, key, &[]);
    }

    /// Memoized boolean lattice result. On a hit the recorded omega
    /// cap-hit delta is replayed onto this thread's counter so per-loop
    /// provenance stays bit-identical with a cold run.
    pub fn get_bool(&self, key: u128) -> Option<(bool, Tier)> {
        let payload = self.get_entry(key, RecordKind::Bool)?;
        match codec::decode_bool_entry(&payload) {
            Some((value, tier, delta)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                padfa_omega::limit_stats::adopt_thread_overflows(delta);
                Some((value, tier))
            }
            None => {
                self.drop_corrupt_entry(key, &payload, "undecodable bool entry");
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoized region-valued lattice result (see [`Store::get_bool`]
    /// for the overflow-delta replay).
    pub fn get_region(&self, key: u128) -> Option<(Disjunction, Tier)> {
        let payload = self.get_entry(key, RecordKind::Region)?;
        match codec::decode_region_entry(&payload) {
            Some((region, tier, delta)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                padfa_omega::limit_stats::adopt_thread_overflows(delta);
                Some((region, tier))
            }
            None => {
                self.drop_corrupt_entry(key, &payload, "undecodable region entry");
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoized interprocedural summary plus the loop reports derived
    /// while building it. A hit skips the procedure's analysis entirely.
    pub fn get_proc(&self, key: u128) -> Option<(Summary, Vec<LoopReport>)> {
        let payload = self.get_entry(key, RecordKind::Proc)?;
        match codec::decode_proc_entry(&payload) {
            Some(decoded) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(decoded)
            }
            None => {
                self.drop_corrupt_entry(key, &payload, "undecodable proc entry");
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    // --------------------------------------------------------------
    // Writes
    // --------------------------------------------------------------

    pub fn put_bool(&self, key: u128, value: bool, tier: Tier, overflow_delta: u64) {
        self.put(
            key,
            RecordKind::Bool,
            codec::encode_bool_entry(value, tier, overflow_delta),
        );
    }

    pub fn put_region(&self, key: u128, region: &Disjunction, tier: Tier, overflow_delta: u64) {
        self.put(
            key,
            RecordKind::Region,
            codec::encode_region_entry(region, tier, overflow_delta),
        );
    }

    /// Persist one procedure's summary + reports, plus the dependency
    /// edges from every IR hash it transitively depends on to this key.
    pub fn put_proc(
        &self,
        key: u128,
        summary: &Summary,
        reports: &[LoopReport],
        dep_ir_hashes: &BTreeSet<u128>,
    ) {
        self.put(
            key,
            RecordKind::Proc,
            codec::encode_proc_entry(summary, reports),
        );
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        for &ir in dep_ir_hashes {
            let known = lock(&self.deps)
                .get(&ir)
                .is_some_and(|deps| deps.contains(&key));
            if !known {
                lock(&self.deps).entry(ir).or_default().push(key);
                let mut payload = Vec::new();
                codec::put_u128(&mut payload, key);
                self.append(RecordKind::DepEdge, ir, &payload);
            }
        }
    }

    fn put(&self, key: u128, kind: RecordKind, payload: Vec<u8>) {
        if self.disabled.load(Ordering::Relaxed) {
            return;
        }
        self.puts.fetch_add(1, Ordering::Relaxed);
        write(&self.index).insert(key, (kind, payload.clone()));
        self.append(kind, key, &payload);
    }

    /// Append one record to the active segment, honoring write-side
    /// fault injection and degrading (with a typed warning) on any
    /// failure. Real and injected errors take the same path.
    fn append(&self, kind: RecordKind, key: u128, payload: &[u8]) {
        if self.disabled.load(Ordering::Relaxed) || self.writes_disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut j = lock(&self.journal);
        if self.writes_disabled.load(Ordering::Relaxed) {
            return; // another thread degraded while we waited
        }
        let tmp_path = self.dir.join("active.tmp");
        // Lazily start a segment: header first.
        if j.active.is_none() {
            match fs::File::create(&tmp_path) {
                Ok(file) => {
                    j.active = Some(ActiveSeg { file, bytes: 0 });
                    let header = journal::encode_record(
                        RecordKind::Header,
                        0,
                        &journal::encode_header_payload(&self.git_rev),
                    );
                    if !self.write_record(&mut j, &tmp_path, &header) {
                        return;
                    }
                }
                Err(e) => {
                    self.degrade_writes(&mut j, Self::io_err("append", &tmp_path, &e));
                    return;
                }
            }
        }
        let record = journal::encode_record(kind, key, payload);
        if !self.write_record(&mut j, &tmp_path, &record) {
            return;
        }
        // Rotate once the active segment is big enough.
        let full = j
            .active
            .as_ref()
            .is_some_and(|a| a.bytes >= self.max_segment_bytes);
        if full {
            self.seal_locked(&mut j);
        }
    }

    /// Write one framed record, applying write-fault injection.
    /// Transient failures — injected `WriteFail`s and real IO errors —
    /// are retried with backoff up to [`RetryPolicy::max_attempts`]
    /// before writes degrade, so one blip no longer costs a long-lived
    /// server its persistence. A real failure may have flushed a prefix
    /// of the record, so each retry first truncates the segment back to
    /// its last complete record. Torn writes model a *crash*, not a
    /// blip: they are never retried. Returns false when writes degraded.
    fn write_record(&self, j: &mut JournalState, path: &Path, record: &[u8]) -> bool {
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            j.write_ops += 1;
            let op = j.write_ops;
            let err = match self.faults.write_fault(op) {
                Some(IoFaultKind::WriteFail) => StoreError::Io {
                    op: "append",
                    path: path.display().to_string(),
                    msg: "injected write failure".into(),
                },
                Some(IoFaultKind::TornWrite) => {
                    // Persist a prefix, then "crash": the torn tail stays
                    // on disk for the next open to quarantine.
                    if let Some(active) = j.active.as_mut() {
                        let half = record.len() / 2;
                        let _ = active.file.write_all(&record[..half]);
                        let _ = active.file.flush();
                        let _ = active.file.sync_all();
                    }
                    j.active = None; // keep active.tmp on disk, torn
                    self.degrade_writes(
                        j,
                        StoreError::Io {
                            op: "append",
                            path: path.display().to_string(),
                            msg: "injected torn write (crash mid-append)".into(),
                        },
                    );
                    return false;
                }
                _ => {
                    let Some(active) = j.active.as_mut() else {
                        return false;
                    };
                    match active.file.write_all(record) {
                        Ok(()) => {
                            active.bytes += record.len() as u64;
                            return true;
                        }
                        Err(e) => {
                            // Rewind any partial bytes of the failed
                            // record so the retry appends a clean frame;
                            // if even the repair fails the journal state
                            // is unknowable and writes must degrade.
                            let repaired = active
                                .file
                                .set_len(active.bytes)
                                .and_then(|()| active.file.seek(SeekFrom::End(0)))
                                .is_ok();
                            let err = Self::io_err("append", path, &e);
                            if !repaired {
                                self.degrade_writes(j, err);
                                return false;
                            }
                            err
                        }
                    }
                }
            };
            if attempt >= self.retry.max_attempts {
                self.degrade_writes(j, err);
                return false;
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
            crate::flight::instant(
                crate::flight::EventKind::StoreRetry,
                "append",
                attempt.into(),
            );
            (self.sleeper)(self.retry.backoff(attempt));
        }
    }

    fn degrade_writes(&self, j: &mut JournalState, e: StoreError) {
        // Leave active.tmp on disk: whatever was fully appended is
        // salvageable by the next open.
        j.active = None;
        self.writes_disabled.store(true, Ordering::Relaxed);
        self.warn(e);
    }

    /// Seal the active segment: flush + fsync + atomic rename. A
    /// header-only segment is discarded instead of sealed.
    fn seal_locked(&self, j: &mut JournalState) {
        let Some(mut active) = j.active.take() else {
            return;
        };
        let tmp_path = self.dir.join("active.tmp");
        let header_len = journal::encode_record(
            RecordKind::Header,
            0,
            &journal::encode_header_payload(&self.git_rev),
        )
        .len() as u64;
        if active.bytes <= header_len {
            drop(active);
            let _ = fs::remove_file(&tmp_path);
            return;
        }
        let seal = || -> std::io::Result<PathBuf> {
            active.file.flush()?;
            active.file.sync_all()?;
            drop(active);
            let seg_path = self.dir.join(format!("seg-{:04}.log", j.next_seg));
            fs::rename(&tmp_path, &seg_path)?;
            Ok(seg_path)
        };
        match seal() {
            Ok(_) => j.next_seg += 1,
            Err(e) => {
                let err = Self::io_err("seal", &tmp_path, &e);
                self.writes_disabled.store(true, Ordering::Relaxed);
                self.warn(err);
            }
        }
    }

    /// Flush and seal the active segment (called at the end of a run;
    /// also runs on drop).
    pub fn flush(&self) {
        if self.disabled.load(Ordering::Relaxed) || self.writes_disabled.load(Ordering::Relaxed) {
            return;
        }
        let mut j = lock(&self.journal);
        self.seal_locked(&mut j);
    }

    // --------------------------------------------------------------
    // Invalidation
    // --------------------------------------------------------------

    /// Tombstone every summary entry that depends (transitively, via the
    /// persisted dependency edges) on the procedure whose IR hashes to
    /// `ir_hash`. Returns the number of entries invalidated.
    ///
    /// Content addressing already makes edited procedures *miss* — their
    /// keys change — so this is eager garbage collection: it reclaims
    /// entries that can never hit again after an edit.
    pub fn invalidate_procedure(&self, ir_hash: u128) -> usize {
        if self.disabled.load(Ordering::Relaxed) {
            return 0;
        }
        let dep_keys: Vec<u128> = lock(&self.deps).get(&ir_hash).cloned().unwrap_or_default();
        let mut n = 0;
        for key in dep_keys {
            if write(&self.index).remove(&key).is_some() {
                n += 1;
                self.append(RecordKind::Tombstone, key, &[]);
            }
        }
        self.invalidated.fetch_add(n as u64, Ordering::Relaxed);
        n
    }
}

impl Drop for Store {
    fn drop(&mut self) {
        self.flush();
        if self.holds_lock.load(Ordering::Relaxed) {
            let _ = fs::remove_file(self.dir.join("lock"));
        }
    }
}

/// Segment sequence number from a `seg-NNNN.log` path.
fn seg_number(path: &Path) -> Option<u32> {
    let name = path.file_name()?.to_str()?;
    name.strip_prefix("seg-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Is `pid` a live process? Linux answers via `/proc`; elsewhere we
/// assume dead (a stale-looking lock is reclaimed — the single-machine,
/// Linux-first deployment makes this the pragmatic default).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        false
    }
}

/// The kernel start time (clock ticks since boot, field 22 of
/// `/proc/<pid>/stat`) of `pid`. `None` off Linux or when the process
/// is gone. The comm field may contain spaces and parentheses, so the
/// scan anchors on the *last* `)` before splitting.
fn proc_start_time(pid: u32) -> Option<u64> {
    if !cfg!(target_os = "linux") {
        return None;
    }
    let stat = fs::read_to_string(format!("/proc/{pid}/stat")).ok()?;
    let rest = &stat[stat.rfind(')')? + 1..];
    // `rest` starts at field 3 (state); starttime is field 22.
    rest.split_whitespace().nth(19)?.parse().ok()
}

/// Does the process that wrote a `pid [starttime]` lock stamp still
/// exist? A live pid whose start time differs from the recorded one is
/// a *recycled* pid — the original opener is dead, so its lock is
/// stale. A stamp without a start time (pre-hardening or non-Linux)
/// falls back to the pid-only liveness check.
fn holder_is_live(pid: u32, recorded_start: Option<u64>) -> bool {
    if !pid_alive(pid) {
        return false;
    }
    match (recorded_start, proc_start_time(pid)) {
        (Some(recorded), Some(current)) => recorded == current,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn test_dir(suffix: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("padfa_store_test_{}_{suffix}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> StoreConfig {
        StoreConfig::new(dir, "testrev")
    }

    #[test]
    fn cold_put_then_warm_get_across_reopen() {
        let dir = test_dir("roundtrip");
        {
            let s = Store::open(cfg(&dir));
            assert!(s.enabled());
            s.put_bool(1, true, Tier::General, 3);
            s.put_bool(2, false, Tier::General, 0);
            assert_eq!(s.get_bool(1), Some((true, Tier::General)));
            assert!(s.take_warnings().is_empty());
        } // drop seals the segment
        let s = Store::open(cfg(&dir));
        assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        assert_eq!(s.get_bool(2), Some((false, Tier::General)));
        assert_eq!(s.get_bool(3), None);
        let st = s.stats();
        assert_eq!(st.hits, 2);
        assert_eq!(st.misses, 1);
        assert_eq!(st.loaded, 2);
        assert!(s.take_warnings().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn different_git_rev_discards_segments() {
        let dir = test_dir("stale");
        {
            let s = Store::open(cfg(&dir));
            s.put_bool(1, true, Tier::General, 0);
        }
        let s = Store::open(StoreConfig::new(&dir, "otherrev"));
        assert_eq!(s.get_bool(1), None);
        assert_eq!(s.stats().stale_segments, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_salvageable_tail() {
        let dir = test_dir("torn");
        {
            // Fault on the 4th write op: header + two entries land, the
            // third entry is torn mid-record.
            let faults = IoFaultPlan::at(IoFaultKind::TornWrite, 4);
            let s = Store::open(cfg(&dir).with_faults(faults));
            s.put_bool(1, true, Tier::General, 0);
            s.put_bool(2, false, Tier::General, 0);
            s.put_bool(3, true, Tier::General, 0);
            let warnings = s.take_warnings();
            assert_eq!(warnings.len(), 1);
            assert!(matches!(warnings[0], StoreError::Io { op: "append", .. }));
            assert!(s.stats().writes_degraded);
            // Reads keep working after write degradation.
            assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        }
        // Reopen: the two complete records are salvaged, the torn tail
        // is quarantined, and analysis-visible state is sound.
        let s = Store::open(cfg(&dir));
        assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        assert_eq!(s.get_bool(2), Some((false, Tier::General)));
        assert_eq!(s.get_bool(3), None);
        let st = s.stats();
        assert_eq!(st.salvaged, 2);
        assert!(st.quarantined >= 1);
        let warnings = s.take_warnings();
        assert!(warnings
            .iter()
            .any(|w| matches!(w, StoreError::Corrupt { .. })));
        // The quarantine sidecar exists.
        let corrupt_files = fs::read_dir(dir.join("corrupt")).unwrap().count();
        assert!(corrupt_files >= 1);
        let _ = fs::remove_dir_all(&dir);
    }

    /// A sleeper that records each backoff instead of sleeping, so retry
    /// behavior is asserted on a deterministic clock.
    fn recording_sleeper() -> (Sleeper, Arc<Mutex<Vec<Duration>>>) {
        let log: Arc<Mutex<Vec<Duration>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&log);
        let sleeper: Sleeper = Arc::new(move |d| lock(&sink).push(d));
        (sleeper, log)
    }

    #[test]
    fn transient_write_fail_is_retried_and_recovered() {
        let dir = test_dir("wretry");
        let (sleeper, slept) = recording_sleeper();
        {
            // One injected failure on op 2: the retry (op 3) succeeds, so
            // persistence survives with only a backoff and a counter.
            let s = Store::open(
                cfg(&dir)
                    .with_faults(IoFaultPlan::at(IoFaultKind::WriteFail, 2))
                    .with_sleeper(sleeper),
            );
            s.put_bool(1, true, Tier::General, 0);
            s.put_bool(2, false, Tier::General, 0);
            let st = s.stats();
            assert!(!st.writes_degraded, "one transient fault must not degrade");
            assert_eq!(st.retries, 1);
            assert!(s.take_warnings().is_empty());
        }
        assert_eq!(lock(&slept).as_slice(), &[Duration::from_millis(10)]);
        // The retried record really reached disk.
        let s = Store::open(cfg(&dir));
        assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        assert_eq!(s.get_bool(2), Some((false, Tier::General)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn persistent_write_fail_exhausts_retries_then_degrades() {
        let dir = test_dir("wfail");
        let (sleeper, slept) = recording_sleeper();
        // Ops 2, 3, 4 all fail: attempts exhaust (max_attempts = 3) and
        // writes degrade exactly as an un-retried store used to.
        let faults = IoFaultPlan::at(IoFaultKind::WriteFail, 2)
            .with(IoFaultSpec {
                at_op: 3,
                kind: IoFaultKind::WriteFail,
            })
            .with(IoFaultSpec {
                at_op: 4,
                kind: IoFaultKind::WriteFail,
            });
        let s = Store::open(cfg(&dir).with_faults(faults).with_sleeper(sleeper));
        s.put_bool(1, true, Tier::General, 0); // header (op 1) + entry (ops 2-4 fail)
        let st = s.stats();
        assert!(st.writes_degraded);
        assert!(!st.degraded);
        assert_eq!(st.retries, 2);
        // Exponential backoff: 10ms then 20ms.
        assert_eq!(
            lock(&slept).as_slice(),
            &[Duration::from_millis(10), Duration::from_millis(20)]
        );
        // The in-memory index still serves the entry this session.
        assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        let warnings = s.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert!(matches!(warnings[0], StoreError::Io { .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn transient_read_fail_is_retried_and_recovered() {
        let dir = test_dir("rretry");
        {
            let s = Store::open(cfg(&dir));
            s.put_bool(1, true, Tier::General, 0);
        }
        let (sleeper, slept) = recording_sleeper();
        let s = Store::open(
            cfg(&dir)
                .with_faults(IoFaultPlan::at(IoFaultKind::ReadFail, 1))
                .with_sleeper(sleeper),
        );
        assert!(s.enabled(), "one transient read fault must not disable");
        assert_eq!(s.get_bool(1), Some((true, Tier::General)));
        assert_eq!(s.stats().retries, 1);
        assert_eq!(lock(&slept).len(), 1);
        assert!(s.take_warnings().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_fail_burst_disables_store() {
        let dir = test_dir("rfail");
        {
            let s = Store::open(cfg(&dir));
            s.put_bool(1, true, Tier::General, 0);
        }
        // Every attempt of the first read fails: retries exhaust and the
        // store degrades to in-memory-only, exactly as before retries.
        let faults = IoFaultPlan::at(IoFaultKind::ReadFail, 1)
            .with(IoFaultSpec {
                at_op: 2,
                kind: IoFaultKind::ReadFail,
            })
            .with(IoFaultSpec {
                at_op: 3,
                kind: IoFaultKind::ReadFail,
            });
        let (sleeper, _slept) = recording_sleeper();
        let s = Store::open(cfg(&dir).with_faults(faults).with_sleeper(sleeper));
        assert!(!s.enabled());
        assert_eq!(s.get_bool(1), None); // degraded: no reads served
        s.put_bool(2, true, Tier::General, 0); // and no writes persisted
        assert_eq!(s.stats().retries, 2);
        let warnings = s.take_warnings();
        assert_eq!(warnings.len(), 1);
        assert!(matches!(warnings[0], StoreError::Io { op: "read", .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retry_policy_backoff_doubles_and_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(30), Duration::from_millis(1000)); // capped
        assert_eq!(RetryPolicy::none().backoff(1), Duration::ZERO);
    }

    #[test]
    fn retry_none_degrades_on_first_failure() {
        let dir = test_dir("wnone");
        let s = Store::open(
            cfg(&dir)
                .with_faults(IoFaultPlan::at(IoFaultKind::WriteFail, 2))
                .with_retry(RetryPolicy::none()),
        );
        s.put_bool(1, true, Tier::General, 0);
        let st = s.stats();
        assert!(st.writes_degraded);
        assert_eq!(st.retries, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bitflip_quarantines_and_recovers() {
        let dir = test_dir("bitflip");
        {
            let s = Store::open(cfg(&dir));
            for k in 0..20u128 {
                s.put_bool(k, true, Tier::General, 0);
            }
        }
        let s = Store::open(cfg(&dir).with_faults(IoFaultPlan::at(IoFaultKind::BitFlip, 1)));
        assert!(s.enabled());
        let st = s.stats();
        // One record was corrupted (or the header, making the segment
        // stale); either way the store stays sound and usable.
        assert!(st.quarantined >= 1 || st.stale_segments >= 1);
        let served: usize = (0..20u128)
            .filter(|&k| s.get_bool(k) == Some((true, Tier::General)))
            .count();
        assert!(served >= 19 || st.stale_segments == 1);
        s.put_bool(99, false, Tier::General, 0);
        assert_eq!(s.get_bool(99), Some((false, Tier::General)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn live_foreign_lock_degrades_opener() {
        let dir = test_dir("lock");
        fs::create_dir_all(&dir).unwrap();
        // PID 1 is alive on any Linux box and is never us.
        fs::write(dir.join("lock"), "1\n").unwrap();
        let b = Store::open(cfg(&dir));
        if cfg!(target_os = "linux") {
            assert!(!b.enabled());
            let warnings = b.take_warnings();
            assert!(matches!(warnings[0], StoreError::Locked { pid: 1, .. }));
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_releases_the_lock() {
        let dir = test_dir("unlock");
        {
            let a = Store::open(cfg(&dir));
            assert!(a.enabled());
            assert!(dir.join("lock").exists());
        }
        assert!(!dir.join("lock").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_lock_from_dead_pid_is_reclaimed() {
        let dir = test_dir("stalelock");
        fs::create_dir_all(&dir).unwrap();
        // PID 4294967294 is not a live process.
        fs::write(dir.join("lock"), "4294967294\n").unwrap();
        let s = Store::open(cfg(&dir));
        assert!(s.enabled());
        assert!(s.take_warnings().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recycled_pid_lock_is_reclaimed() {
        if proc_start_time(1).is_none() {
            return; // no /proc: pid-only liveness is the best we can do
        }
        let dir = test_dir("recycledlock");
        fs::create_dir_all(&dir).unwrap();
        // PID 1 is alive, but the recorded start time belongs to a dead
        // opener whose pid was recycled — the lock must be reclaimed.
        fs::write(dir.join("lock"), "1 12345\n").unwrap();
        let s = Store::open(cfg(&dir));
        assert!(s.enabled());
        assert!(s.take_warnings().is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn matching_start_time_lock_still_refuses() {
        let Some(start) = proc_start_time(1) else {
            return;
        };
        let dir = test_dir("samestartlock");
        fs::create_dir_all(&dir).unwrap();
        // Same pid AND same start time: genuinely the same live process.
        fs::write(dir.join("lock"), format!("1 {start}\n")).unwrap();
        let s = Store::open(cfg(&dir));
        assert!(!s.enabled());
        let warnings = s.take_warnings();
        assert!(matches!(warnings[0], StoreError::Locked { pid: 1, .. }));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn own_lock_stamp_includes_start_time() {
        let dir = test_dir("ownstamp");
        let s = Store::open(cfg(&dir));
        assert!(s.enabled());
        let text = fs::read_to_string(dir.join("lock")).unwrap();
        let mut words = text.split_whitespace();
        assert_eq!(
            words.next().and_then(|w| w.parse::<u32>().ok()),
            Some(std::process::id())
        );
        if let Some(start) = proc_start_time(std::process::id()) {
            assert_eq!(
                words.next().and_then(|w| w.parse::<u64>().ok()),
                Some(start)
            );
        }
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rotation_preserves_entries() {
        let dir = test_dir("rotate");
        let mut config = cfg(&dir);
        config.max_segment_bytes = 256; // force frequent rotation
        {
            let s = Store::open(config.clone());
            for k in 0..50u128 {
                s.put_bool(k, k % 2 == 0, Tier::General, 0);
            }
        }
        let segs = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .starts_with("seg-")
            })
            .count();
        assert!(segs > 1, "rotation produced {segs} segment(s)");
        let s = Store::open(config);
        for k in 0..50u128 {
            assert_eq!(s.get_bool(k), Some((k % 2 == 0, Tier::General)), "key {k}");
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tombstones_survive_reopen() {
        let dir = test_dir("tombstone");
        {
            let s = Store::open(cfg(&dir));
            s.put_bool(7, true, Tier::General, 0);
        }
        {
            let s = Store::open(cfg(&dir));
            assert_eq!(s.get_bool(7), Some((true, Tier::General)));
            // Manually tombstone via the corrupt-entry path equivalent.
            s.append(RecordKind::Tombstone, 7, &[]);
            write(&s.index).remove(&7);
        }
        let s = Store::open(cfg(&dir));
        assert_eq!(s.get_bool(7), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn dependency_invalidation_tombstones_dependents() {
        let dir = test_dir("invalidate");
        let summary = Summary::default();
        {
            let s = Store::open(cfg(&dir));
            let deps: BTreeSet<u128> = [100, 200].into_iter().collect();
            s.put_proc(11, &summary, &[], &deps);
            s.put_proc(12, &summary, &[], &[100].into_iter().collect());
            s.put_proc(13, &summary, &[], &[300].into_iter().collect());
        }
        {
            // Invalidate everything depending on IR hash 100: keys 11, 12.
            let s = Store::open(cfg(&dir));
            assert_eq!(s.invalidate_procedure(100), 2);
            assert!(s.get_proc(11).is_none());
            assert!(s.get_proc(12).is_none());
            assert!(s.get_proc(13).is_some());
        }
        // And the tombstones persisted.
        let s = Store::open(cfg(&dir));
        assert!(s.get_proc(11).is_none());
        assert!(s.get_proc(13).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_is_shareable_across_threads() {
        let dir = test_dir("threads");
        let s = Arc::new(Store::open(cfg(&dir)));
        let handles: Vec<_> = (0..4u128)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for k in 0..25u128 {
                        s.put_bool(t * 1000 + k, true, Tier::General, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            let _ = h.join();
        }
        for t in 0..4u128 {
            for k in 0..25u128 {
                assert_eq!(s.get_bool(t * 1000 + k), Some((true, Tier::General)));
            }
        }
        drop(s);
        let _ = fs::remove_dir_all(&dir);
    }
}
