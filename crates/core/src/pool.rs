//! Intra-procedure fan-out: a scoped, self-scheduling parallel map with
//! a session-wide worker-token pool.
//!
//! The level-parallel driver only splits work across *procedures*, and
//! 27 of the 30 corpus programs have exactly one — so `--jobs` bought
//! nothing (or worse, pure interner contention) on most programs.
//! [`par_map`] lets the analysis fan out the independent work *inside*
//! a procedure: per-array dependence tests, per-array loop-summary
//! subtractions, and per-statement block summaries.
//!
//! ## Scheduling
//!
//! Tasks are claimed from a shared atomic cursor in chunks (a chunked
//! task queue — the idle-steal half of a work-stealing deque without
//! the per-worker deques, which buy nothing for flat task lists), so
//! uneven task costs self-balance. The *number* of worker threads is
//! bounded session-wide by [`WorkerTokens`]: `jobs - 1` tokens exist,
//! nested `par_map` calls grab what's available and run inline when
//! nothing is (grab-don't-wait, so nesting can never deadlock), and the
//! caller always participates, so total running threads never exceed
//! `--jobs`.
//!
//! ## Determinism
//!
//! Results are merged in item-index order, so callers see exactly the
//! sequential order regardless of which thread computed what. Panics
//! are caught per item and the lowest-index payload is re-raised after
//! all tasks finish, matching sequential first-failure selection. Two
//! thread-local accounting channels are preserved across the fan-out:
//!
//! * work-budget meters: when a finite budget is armed the map runs
//!   inline ([`crate::budget::armed`]), keeping step counts and the
//!   exhaustion point exactly as at `--jobs 1`;
//! * `limit_stats` cap-hit attribution: each worker's thread-local
//!   overflow delta is migrated back to the calling thread, so
//!   per-loop deltas keep summing the same events.

use crate::{budget, flight, trace};
use padfa_omega::limit_stats;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Session-wide pool of spawnable-worker tokens (`jobs - 1` of them:
/// the calling thread is always the jobs-th lane).
pub(crate) struct WorkerTokens {
    pub(crate) avail: AtomicUsize,
}

impl WorkerTokens {
    pub(crate) fn new(jobs: usize) -> WorkerTokens {
        WorkerTokens {
            avail: AtomicUsize::new(jobs.saturating_sub(1)),
        }
    }

    /// Take up to `want` tokens without waiting; returns how many were
    /// actually taken (possibly 0). Shared with the SCC-DAG executor
    /// ([`crate::sched::run_dag`]), so procedure-level lanes and
    /// intra-procedure fan-outs draw from one session-wide budget.
    pub(crate) fn grab(&self, want: usize) -> usize {
        let mut cur = self.avail.load(Ordering::Relaxed);
        loop {
            let take = cur.min(want);
            if take == 0 {
                return 0;
            }
            match self.avail.compare_exchange_weak(
                cur,
                cur - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn release(&self, n: usize) {
        self.avail.fetch_add(n, Ordering::Relaxed);
    }
}

type Claimed<R> = Vec<(usize, std::thread::Result<R>)>;

/// Claim chunks of `[0, items.len())` from `cursor` until exhausted,
/// running `f` on each index with per-item panic isolation.
fn run_claims<T, R>(
    items: &[T],
    cursor: &AtomicUsize,
    chunk: usize,
    f: &(impl Fn(usize, &T) -> R + Sync),
) -> Claimed<R> {
    let mut out = Vec::new();
    loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= items.len() {
            return out;
        }
        let end = (start + chunk).min(items.len());
        for (i, item) in items.iter().enumerate().take(end).skip(start) {
            out.push((i, catch_unwind(AssertUnwindSafe(|| f(i, item)))));
        }
    }
}

/// Map `f` over `items` in parallel on up to `jobs` lanes, returning
/// results in item order. Runs inline when the list is trivial, a
/// budget meter is armed, or no worker tokens are available; see the
/// module docs for the determinism contract.
pub(crate) fn par_map<T, R, F>(tokens: &WorkerTokens, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.len() < 2 || budget::armed() {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = tokens.grab(items.len() - 1);
    if workers == 0 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    // Small chunks self-balance uneven task costs; ~4 claims per lane
    // keeps cursor traffic negligible.
    let chunk = items.len().div_ceil((workers + 1) * 4).max(1);
    let cursor = AtomicUsize::new(0);
    let f_ref = &f;
    // Worker lanes inherit the caller's flight trace tag (so events
    // they record stay attributable to the request being served) and
    // hand their lattice-op deltas back, keeping per-procedure flight
    // totals jobs-deterministic — the same migration `limit_stats`
    // does for cap-hit attribution.
    let parent_trace = flight::current_trace();
    let (claimed, migrated, flight_ops) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _tag = flight::set_trace(parent_trace);
                    let got = run_claims(items, &cursor, chunk, f_ref);
                    trace::flush_lattice_batch();
                    (
                        got,
                        limit_stats::thread_overflows(),
                        flight::take_lattice_ops(),
                    )
                })
            })
            .collect();
        let mut all = run_claims(items, &cursor, chunk, f_ref);
        let mut migrated = 0u64;
        let mut flight_ops = 0u64;
        for h in handles {
            // Per-item panics were caught inside the task, so a join
            // error could only come from the scaffold itself; its items
            // are recomputed inline by the merge below.
            if let Ok((got, delta, ops)) = h.join() {
                all.extend(got);
                migrated += delta;
                flight_ops += ops;
            }
        }
        (all, migrated, flight_ops)
    });
    tokens.release(workers);
    limit_stats::adopt_thread_overflows(migrated);
    flight::adopt_lattice_ops(flight_ops);

    // Ordered merge: re-raise the lowest-index panic (sequential
    // first-failure selection), otherwise hand back results in order.
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let mut first_panic: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
    for (i, res) in claimed {
        match res {
            Ok(r) => slots[i] = Some(r),
            Err(payload) => {
                if first_panic.as_ref().is_none_or(|(j, _)| i < *j) {
                    first_panic = Some((i, payload));
                }
            }
        }
    }
    if let Some((_, payload)) = first_panic {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| {
            // Every index is claimed exactly once, so the slot is
            // always filled; the inline fallback keeps this total
            // without a panic path (and covers a lost join above).
            s.unwrap_or_else(|| f(i, &items[i]))
        })
        .collect()
}

/// Program-level fan-out for external drivers (the corpus runner): map
/// `f` over `items` on up to `jobs` lanes with a one-shot token pool,
/// returning results in item order with the same determinism contract
/// as [`par_map`].
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map(&WorkerTokens::new(jobs), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_item_order() {
        let tokens = WorkerTokens::new(4);
        let items: Vec<usize> = (0..100).collect();
        let got = par_map(&tokens, &items, |i, &x| {
            assert_eq!(i, x);
            x * 2
        });
        assert_eq!(got, (0..200).step_by(2).collect::<Vec<_>>());
        // Tokens were returned.
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_tokens_runs_inline() {
        let tokens = WorkerTokens::new(1);
        let items = [10, 20, 30];
        let got = par_map(&tokens, &items, |_, &x| x + 1);
        assert_eq!(got, vec![11, 21, 31]);
    }

    #[test]
    fn lowest_index_panic_wins() {
        let tokens = WorkerTokens::new(4);
        let items: Vec<usize> = (0..64).collect();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&tokens, &items, |i, _| {
                if i == 7 || i == 41 {
                    std::panic::panic_any(format!("boom-{i}"));
                }
                i
            })
        }));
        let payload = caught.expect_err("must propagate panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom-7");
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 3, "tokens leaked");
    }

    #[test]
    fn nested_par_map_does_not_deadlock() {
        let tokens = WorkerTokens::new(3);
        let outer: Vec<usize> = (0..8).collect();
        let got = par_map(&tokens, &outer, |_, &o| {
            let inner: Vec<usize> = (0..8).collect();
            par_map(&tokens, &inner, |_, &i| o * 100 + i)
                .into_iter()
                .sum::<usize>()
        });
        let want: Vec<usize> = (0..8).map(|o| o * 800 + 28).collect();
        assert_eq!(got, want);
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 2);
    }
}
