//! Watchdog work budgets for the per-procedure analysis.
//!
//! Predicated array data-flow over Fourier–Motzkin regions can blow up
//! combinatorially. The `omega` layer already caps representation size
//! ([`padfa_omega::Limits`]); this module caps *work*: a [`WorkBudget`]
//! bounds the number of lattice-operation steps and (optionally) the
//! wall-clock time one procedure's summarization may consume.
//!
//! ## Mechanics
//!
//! The budget is metered through a thread-local installed by the driver
//! around each procedure ([`install`]/[`take`]). Every memoized lattice
//! query on the [`crate::session::AnalysisSession`] charges one step
//! *before* consulting the memo tables, so the step count of a procedure
//! is a deterministic function of the program and options — independent
//! of worker count and of what other procedures warmed the caches. Step
//! exhaustion therefore triggers at the same operation on every run,
//! which keeps `--jobs N` output byte-identical to `--jobs 1` even for
//! starved budgets. The wall deadline is inherently non-deterministic
//! and only checked when explicitly configured.
//!
//! Exhaustion unwinds the procedure via [`std::panic::panic_any`] with a
//! private [`Exhausted`] payload; the driver catches it at the procedure
//! boundary, replaces the summary with a *sound* degraded conservative
//! summary, and continues (or, under [`OnExhausted::Error`], aborts the
//! run with [`crate::AnalysisError::BudgetExhausted`]). The unwind is
//! also the cancellation mechanism: an exhausted procedure stops
//! immediately instead of wedging the level-parallel driver. Panics
//! never unwind while a session lock is held (steps are charged before
//! any lock is taken), so the shared session stays consistent.
//!
//! The meter additionally records peak operand sizes (disjuncts per
//! region, constraints per system), surfaced through
//! [`crate::StatsSnapshot`] and the corpus ledger.

use padfa_omega::Disjunction;
use std::cell::RefCell;
use std::sync::Once;
use std::time::Instant;

/// What to do when a procedure exhausts its budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OnExhausted {
    /// Replace the procedure's summary with a sound conservative
    /// (degraded) summary and keep analyzing. Downstream this forces the
    /// sequential version or a runtime test — never a wrong "parallel".
    #[default]
    Degrade,
    /// Abort the whole analysis with
    /// [`crate::AnalysisError::BudgetExhausted`].
    Error,
}

/// Per-procedure resource limits for the analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkBudget {
    /// Maximum lattice-operation steps per procedure (deterministic).
    pub max_steps: Option<u64>,
    /// Wall-clock deadline per procedure in milliseconds (checked
    /// periodically; non-deterministic — leave unset for reproducible
    /// degradation decisions).
    pub deadline_ms: Option<u64>,
    /// Policy on exhaustion.
    pub on_exhausted: OnExhausted,
}

impl WorkBudget {
    /// No limits: the analysis runs to completion.
    pub const UNLIMITED: WorkBudget = WorkBudget {
        max_steps: None,
        deadline_ms: None,
        on_exhausted: OnExhausted::Degrade,
    };

    /// A step-limited budget with the default (degrade) policy.
    pub fn steps(max_steps: u64) -> WorkBudget {
        WorkBudget {
            max_steps: Some(max_steps),
            ..WorkBudget::UNLIMITED
        }
    }

    /// Switch the exhaustion policy to hard errors.
    pub fn strict(mut self) -> WorkBudget {
        self.on_exhausted = OnExhausted::Error;
        self
    }

    pub fn is_unlimited(&self) -> bool {
        self.max_steps.is_none() && self.deadline_ms.is_none()
    }
}

impl Default for WorkBudget {
    fn default() -> WorkBudget {
        WorkBudget::UNLIMITED
    }
}

/// Panic payload used to unwind out of an exhausted procedure. Private
/// to the crate: the driver downcasts to it at the `catch_unwind`
/// boundary.
pub(crate) struct Exhausted;

/// What one procedure's meter measured.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct MeterReport {
    pub steps: u64,
    pub peak_disjuncts: usize,
    pub peak_constraints: usize,
}

/// Check the wall deadline only every this many steps (keeps
/// `Instant::now` off the hot path).
const DEADLINE_STRIDE: u64 = 256;

struct Meter {
    steps: u64,
    max_steps: u64,
    deadline: Option<Instant>,
    peak_disjuncts: usize,
    peak_constraints: usize,
}

thread_local! {
    static METER: RefCell<Option<Meter>> = const { RefCell::new(None) };
}

static QUIET_HOOK: Once = Once::new();

/// Install (once, process-wide) a panic hook that stays silent for the
/// budget-exhaustion unwind — it is control flow the driver always
/// catches, not a crash — and defers to the previous hook otherwise.
fn install_quiet_hook() {
    QUIET_HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Exhausted>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Arm this thread's meter for one procedure. The driver pairs every
/// `install` with a [`take`].
pub(crate) fn install(budget: &WorkBudget) {
    if budget.is_unlimited() {
        return;
    }
    install_quiet_hook();
    let meter = Meter {
        steps: 0,
        max_steps: budget.max_steps.unwrap_or(u64::MAX),
        deadline: budget
            .deadline_ms
            .map(|ms| Instant::now() + std::time::Duration::from_millis(ms)),
        peak_disjuncts: 0,
        peak_constraints: 0,
    };
    METER.with(|m| *m.borrow_mut() = Some(meter));
}

/// Disarm the meter and return what it measured (zeros when unarmed).
pub(crate) fn take() -> MeterReport {
    METER.with(|m| {
        m.borrow_mut()
            .take()
            .map_or(MeterReport::default(), |mt| MeterReport {
                steps: mt.steps,
                peak_disjuncts: mt.peak_disjuncts,
                peak_constraints: mt.peak_constraints,
            })
    })
}

/// Whether this thread's meter is armed (a finite budget is in force).
/// The intra-procedure fan-out checks this and runs inline when armed:
/// the meter is thread-local, so spawning workers would split the step
/// count across meters and change where the watchdog fires. Budgeted
/// runs are diagnostics, not the perf target, so losing fan-out there
/// is the right trade for exact budget semantics.
pub(crate) fn armed() -> bool {
    METER.with(|m| m.borrow().is_some())
}

/// Charge `n` steps against this thread's meter (no-op when unarmed).
/// Unwinds with [`Exhausted`] when the budget runs out. Must only be
/// called while no session lock is held.
pub(crate) fn charge(n: u64) {
    let exhausted = METER.with(|m| {
        let mut borrow = m.borrow_mut();
        let mt = borrow.as_mut()?;
        mt.steps = mt.steps.saturating_add(n);
        if mt.steps > mt.max_steps {
            return Some(("max-steps", mt.steps));
        }
        if let Some(dl) = mt.deadline {
            if mt.steps % DEADLINE_STRIDE == 0 && Instant::now() > dl {
                return Some(("deadline", mt.steps));
            }
        }
        None
    });
    if let Some((reason, steps)) = exhausted {
        // The flight recorder sees the exhaustion at the exact
        // operation (with the reason the meter tripped on); the trace
        // instant with the procedure name follows at the catch site.
        crate::flight::instant(crate::flight::EventKind::BudgetExhausted, reason, steps);
        // The one sanctioned unwind in this crate: the watchdog raises
        // `Exhausted` here and `analyze_proc` catches it at the
        // procedure boundary, where it becomes a degraded summary or a
        // typed `BudgetExhausted` error — it cannot escape the crate.
        #[allow(clippy::panic)]
        std::panic::panic_any(Exhausted);
    }
}

/// Record operand sizes for peak accounting (no-op when unarmed).
pub(crate) fn note_region(d: &Disjunction) {
    METER.with(|m| {
        let mut borrow = m.borrow_mut();
        if let Some(mt) = borrow.as_mut() {
            mt.peak_disjuncts = mt.peak_disjuncts.max(d.systems().len());
            let widest = d.systems().iter().map(|s| s.len()).max().unwrap_or(0);
            mt.peak_constraints = mt.peak_constraints.max(widest);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_omega::{Constraint, LinExpr, System, Var};

    #[test]
    fn unarmed_charging_is_free() {
        charge(1_000_000);
        let r = take();
        assert_eq!(r, MeterReport::default());
    }

    #[test]
    fn steps_exhaust_deterministically() {
        install(&WorkBudget::steps(10));
        for _ in 0..10 {
            charge(1);
        }
        let caught = std::panic::catch_unwind(|| charge(1));
        let payload = caught.expect_err("11th step must exhaust");
        assert!(payload.downcast_ref::<Exhausted>().is_some());
        let r = take();
        assert_eq!(r.steps, 11);
    }

    #[test]
    fn peaks_track_operand_sizes() {
        install(&WorkBudget::steps(1000));
        let v = Var::new("bp");
        let sys = System::from_constraints([
            Constraint::geq(LinExpr::var(v), LinExpr::constant(1)),
            Constraint::leq(LinExpr::var(v), LinExpr::constant(9)),
        ]);
        let mut d = Disjunction::from_system(sys.clone());
        d.push(sys);
        note_region(&d);
        let r = take();
        assert_eq!(r.peak_disjuncts, 2);
        assert_eq!(r.peak_constraints, 2);
    }

    #[test]
    fn budget_constructors() {
        assert!(WorkBudget::UNLIMITED.is_unlimited());
        let b = WorkBudget::steps(5);
        assert!(!b.is_unlimited());
        assert_eq!(b.on_exhausted, OnExhausted::Degrade);
        assert_eq!(b.strict().on_exhausted, OnExhausted::Error);
    }
}
