//! Decision provenance: the evidence chain behind every loop verdict.
//!
//! The paper's evaluation attributes each parallelized loop to the
//! mechanism that won it and each sequential loop to the dependence that
//! blocked it. A [`Provenance`] tree attached to every
//! [`crate::LoopReport`] records exactly that chain:
//!
//! * per array, the dependence / privatization **pair tests** that were
//!   run ([`PairEvidence`]) — which guarded pieces were compared, and
//!   whether the pair was discharged by complementary guards, by region
//!   emptiness, by an extracted symbolic condition, or assumed to
//!   conflict;
//! * the per-array **verdict** ([`ArrayVerdict`]) including the emitted
//!   run-time test or the concrete blocking condition (with the reason a
//!   candidate test was rejected);
//! * scalar dataflow verdicts, applied predicate **embedding**, the
//!   loop-level **run-time test**, any **budget** degradation event, and
//!   the `omega` cap-hit / `$lat`-pool-overflow counts attributed to
//!   this specific loop.
//!
//! The tree is deterministic: array evidence follows the summary's
//! `BTreeMap` order, pair evidence follows the fixed piece iteration
//! order of the dependence test, and the cap-hit counters are deltas of
//! thread-local counters (each procedure is analyzed by exactly one
//! worker). `padfa explain` renders it via [`render_text`] /
//! [`loop_json`].

use crate::report::{LoopReport, Mechanisms, Outcome};
use padfa_omega::Var;
use padfa_pred::Pred;
use std::sync::Arc;

/// The single mechanism credited with a parallelized loop, in the
/// paper's attribution order: a run-time test outranks extraction, which
/// outranks embedding, which outranks plain predicated (guarded) values;
/// loops needing none of them are credited to the base analysis.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mechanism {
    Base,
    Predicates,
    Embedding,
    Extraction,
    RuntimeTest,
}

impl Mechanism {
    /// Attribute a parallelized loop to exactly one winning mechanism.
    pub fn winner(m: &Mechanisms) -> Mechanism {
        if m.runtime_test {
            Mechanism::RuntimeTest
        } else if m.extraction {
            Mechanism::Extraction
        } else if m.embedding {
            Mechanism::Embedding
        } else if m.predicates {
            Mechanism::Predicates
        } else {
            Mechanism::Base
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Mechanism::Base => "base",
            Mechanism::Predicates => "predicates",
            Mechanism::Embedding => "embedding",
            Mechanism::Extraction => "extraction",
            Mechanism::RuntimeTest => "runtime-test",
        }
    }

    pub const ALL: [Mechanism; 5] = [
        Mechanism::Base,
        Mechanism::Predicates,
        Mechanism::Embedding,
        Mechanism::Extraction,
        Mechanism::RuntimeTest,
    ];
}

/// Which two access classes a pair test compared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairKind {
    /// May-write vs may-write (output dependence).
    WriteWrite,
    /// May-write vs may-read (flow/anti dependence).
    WriteRead,
    /// Exposed read vs may-write (privatization safety).
    ExposedWrite,
}

impl PairKind {
    pub fn label(self) -> &'static str {
        match self {
            PairKind::WriteWrite => "write/write",
            PairKind::WriteRead => "write/read",
            PairKind::ExposedWrite => "exposed/write",
        }
    }
}

/// How one pair test was decided.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairOutcome {
    /// The two guards are complementary: the accesses never co-occur.
    GuardsExclude,
    /// The intersected regions are empty in both iteration orders.
    RegionsDisjoint,
    /// Extraction projected the intersection onto symbolics: the
    /// recorded condition characterizes exactly when the pair conflicts.
    Extracted,
    /// The conflict could not be characterized; it is assumed to exist
    /// whenever both guards hold.
    Assumed,
}

impl PairOutcome {
    pub fn label(self) -> &'static str {
        match self {
            PairOutcome::GuardsExclude => "guards-exclude",
            PairOutcome::RegionsDisjoint => "regions-disjoint",
            PairOutcome::Extracted => "extracted",
            PairOutcome::Assumed => "assumed",
        }
    }
}

/// One cross-iteration pair test: the subtraction/emptiness query that
/// discharged (or failed to discharge) a potential dependence.
///
/// The piece guards are `Arc`-shared: one piece participates in
/// O(pieces) pairs, and deep-cloning its predicate tree per pair showed
/// up as a measurable fraction of corpus wall time.
#[derive(Clone, PartialEq, Debug)]
pub struct PairEvidence {
    pub kind: PairKind,
    /// Guard of the write-side piece.
    pub w_pred: Arc<Pred>,
    /// Guard of the other piece (write, read, or exposed read).
    pub x_pred: Arc<Pred>,
    pub outcome: PairOutcome,
    /// Condition under which this pair conflicts (`False` = discharged).
    pub condition: Pred,
}

/// Why a derived run-time test was rejected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RejectReason {
    /// Run-time tests are disabled in this variant.
    Disabled,
    /// The test only passes for trivial trip counts (0 or 1 iteration).
    Degenerate,
    /// The condition is not a scalar-evaluable run-time test.
    NotScalarTest,
    /// The test's evaluation cost exceeds the configured budget.
    OverCostBudget,
}

impl RejectReason {
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::Disabled => "tests-disabled",
            RejectReason::Degenerate => "degenerate",
            RejectReason::NotScalarTest => "not-scalar-testable",
            RejectReason::OverCostBudget => "over-cost-budget",
        }
    }
}

/// The per-array verdict within one loop.
#[derive(Clone, PartialEq, Debug)]
pub enum ArrayVerdict {
    /// All accesses are recognized self-updates with one operator.
    Reduction,
    /// No cross-iteration conflict exists.
    Independent,
    /// Conflicts exist but privatization removes them unconditionally.
    Privatized { copy_in: bool },
    /// Parallel only under the recorded run-time test.
    RuntimeTested {
        test: Pred,
        with_privatization: bool,
    },
    /// A dependence remains; `dep` is the concrete blocking condition
    /// and `rejected` records the candidate test that was refused.
    Blocking {
        dep: Pred,
        rejected: Option<(Pred, RejectReason)>,
    },
}

/// Evidence for one array of the loop body.
#[derive(Clone, PartialEq, Debug)]
pub struct ArrayEvidence {
    pub array: Var,
    pub verdict: ArrayVerdict,
    /// Cross-iteration dependence pair tests, in test order.
    pub dep_pairs: Vec<PairEvidence>,
    /// Privatization-safety pair tests (empty when not attempted).
    pub priv_pairs: Vec<PairEvidence>,
}

/// The per-scalar verdict within one loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScalarVerdict {
    /// Exposed read of a written scalar: a loop-carried flow dependence.
    ExposedFlow,
    /// Written but never exposed: privatizable.
    Privatized,
    /// Recognized reduction target.
    Reduction,
}

impl ScalarVerdict {
    pub fn label(self) -> &'static str {
        match self {
            ScalarVerdict::ExposedFlow => "exposed-flow",
            ScalarVerdict::Privatized => "privatized",
            ScalarVerdict::Reduction => "reduction",
        }
    }
}

/// Evidence for one scalar of the loop body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ScalarEvidence {
    pub scalar: Var,
    pub verdict: ScalarVerdict,
}

/// A budget-degradation event covering this loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct BudgetEvent {
    /// Steps the enclosing procedure had consumed when it exhausted.
    pub steps: u64,
}

/// The full evidence chain behind one [`LoopReport`].
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Provenance {
    /// The single winning mechanism — `Some` exactly for parallelized
    /// candidate loops.
    pub winner: Option<Mechanism>,
    pub arrays: Vec<ArrayEvidence>,
    pub scalars: Vec<ScalarEvidence>,
    /// Arrays whose index-dependent guards were embedded into regions at
    /// loop summarization.
    pub embedded: Vec<Var>,
    /// The emitted loop-level run-time test (conjunction of per-array
    /// tests), when the outcome is `ParallelIf`.
    pub runtime_test: Option<Pred>,
    /// Set when the enclosing procedure exhausted its work budget and
    /// this loop was conservatively sequentialized.
    pub budget: Option<BudgetEvent>,
    /// `omega` `Limits` cap-hits (truncated eliminations / disjunct-cap
    /// fallbacks) attributed to this loop's classification and
    /// summarization.
    pub limit_overflows: u64,
    /// `$lat` existential requests beyond the pre-interned pool,
    /// attributed to this loop.
    pub lat_overflow: u64,
}

impl Provenance {
    /// Does the evidence name a concrete blocker (a blocking array
    /// dependence, an exposed scalar flow, or a budget event)?
    pub fn has_blocker(&self) -> bool {
        self.budget.is_some()
            || self
                .arrays
                .iter()
                .any(|a| matches!(a.verdict, ArrayVerdict::Blocking { .. }))
            || self
                .scalars
                .iter()
                .any(|s| s.verdict == ScalarVerdict::ExposedFlow)
    }
}

// ---------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------

struct Node {
    text: String,
    children: Vec<Node>,
}

impl Node {
    fn leaf(text: String) -> Node {
        Node {
            text,
            children: Vec::new(),
        }
    }
}

fn glue(out: &mut String, nodes: &[Node], prefix: &str) {
    for (i, n) in nodes.iter().enumerate() {
        let last = i + 1 == nodes.len();
        out.push_str(prefix);
        out.push_str(if last { "`- " } else { "|- " });
        out.push_str(&n.text);
        out.push('\n');
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "|  " });
        glue(out, &n.children, &child_prefix);
    }
}

fn pair_node(p: &PairEvidence) -> Node {
    let mut text = format!(
        "{} [{}] x [{}]: {}",
        p.kind.label(),
        p.w_pred,
        p.x_pred,
        p.outcome.label()
    );
    if matches!(p.outcome, PairOutcome::Extracted | PairOutcome::Assumed) {
        text.push_str(&format!(" -> conflict when {}", p.condition));
    }
    Node::leaf(text)
}

fn array_node(a: &ArrayEvidence) -> Node {
    let text = match &a.verdict {
        ArrayVerdict::Reduction => format!("array {}: reduction", a.array),
        ArrayVerdict::Independent => format!("array {}: independent", a.array),
        ArrayVerdict::Privatized { copy_in } => format!(
            "array {}: privatized{}",
            a.array,
            if *copy_in { " (copy-in)" } else { "" }
        ),
        ArrayVerdict::RuntimeTested {
            test,
            with_privatization,
        } => format!(
            "array {}: runtime-tested{} -> {}",
            a.array,
            if *with_privatization {
                " (privatizing)"
            } else {
                ""
            },
            test
        ),
        ArrayVerdict::Blocking { dep, rejected } => {
            let mut t = format!("array {}: BLOCKING, dependence when {}", a.array, dep);
            if let Some((test, why)) = rejected {
                t.push_str(&format!(" (test {} rejected: {})", test, why.label()));
            }
            t
        }
    };
    let mut node = Node::leaf(text);
    node.children.extend(a.dep_pairs.iter().map(pair_node));
    node.children.extend(a.priv_pairs.iter().map(pair_node));
    node
}

fn mechanisms_list(m: &Mechanisms) -> String {
    let mut names = Vec::new();
    if m.predicates {
        names.push("predicates");
    }
    if m.embedding {
        names.push("embedding");
    }
    if m.extraction {
        names.push("extraction");
    }
    if m.runtime_test {
        names.push("runtime-test");
    }
    if names.is_empty() {
        "none".to_string()
    } else {
        names.join("+")
    }
}

/// Render one loop's provenance as a human-readable tree.
pub fn render_text(report: &LoopReport) -> String {
    let p = &report.provenance;
    let mut out = format!(
        "{}:{} depth={} -> {}",
        report.proc,
        report
            .label
            .clone()
            .unwrap_or_else(|| format!("L{}", report.id.0)),
        report.depth,
        report.outcome
    );
    if let Some(r) = report.not_candidate {
        out.push_str(&format!(" [not-parallel ({r})]"));
    }
    out.push('\n');

    let mut nodes: Vec<Node> = Vec::new();
    match p.winner {
        Some(w) => nodes.push(Node::leaf(format!(
            "winner: {} (mechanisms: {})",
            w.label(),
            mechanisms_list(&report.mechanisms)
        ))),
        None if report.not_candidate.is_none() => {
            nodes.push(Node::leaf("winner: none (sequential)".to_string()))
        }
        None => {}
    }
    if let Some(t) = &p.runtime_test {
        nodes.push(Node::leaf(format!("run-time test: {t}")));
    }
    nodes.extend(p.arrays.iter().map(array_node));
    for s in &p.scalars {
        nodes.push(Node::leaf(format!(
            "scalar {}: {}",
            s.scalar,
            s.verdict.label()
        )));
    }
    for r in &report.reductions {
        nodes.push(Node::leaf(format!(
            "reduction {} ({:?}{})",
            r.target,
            r.op,
            if r.is_array { ", array" } else { "" }
        )));
    }
    if !p.embedded.is_empty() {
        let names: Vec<String> = p.embedded.iter().map(|v| v.name()).collect();
        nodes.push(Node::leaf(format!("embedded guards: {}", names.join(", "))));
    }
    if p.limit_overflows > 0 {
        nodes.push(Node::leaf(format!(
            "omega cap-hits: {} (capped operations degraded regions of this loop)",
            p.limit_overflows
        )));
    }
    if p.lat_overflow > 0 {
        nodes.push(Node::leaf(format!(
            "lat-pool overflow: {} request(s) beyond the pre-interned pool",
            p.lat_overflow
        )));
    }
    if let Some(b) = &p.budget {
        nodes.push(Node::leaf(format!(
            "budget: procedure exhausted after {} step(s); conservative sequential verdict",
            b.steps
        )));
    }
    glue(&mut out, &nodes, "");
    out
}

// ---------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn pred_json(p: &Pred) -> String {
    format!("\"{}\"", esc(&p.to_string()))
}

fn pair_json(p: &PairEvidence) -> String {
    format!(
        "{{\"kind\":\"{}\",\"w_pred\":{},\"x_pred\":{},\"outcome\":\"{}\",\"condition\":{}}}",
        p.kind.label(),
        pred_json(&p.w_pred),
        pred_json(&p.x_pred),
        p.outcome.label(),
        pred_json(&p.condition),
    )
}

fn array_json(a: &ArrayEvidence) -> String {
    let verdict = match &a.verdict {
        ArrayVerdict::Reduction => "\"verdict\":\"reduction\"".to_string(),
        ArrayVerdict::Independent => "\"verdict\":\"independent\"".to_string(),
        ArrayVerdict::Privatized { copy_in } => {
            format!("\"verdict\":\"privatized\",\"copy_in\":{copy_in}")
        }
        ArrayVerdict::RuntimeTested {
            test,
            with_privatization,
        } => format!(
            "\"verdict\":\"runtime-tested\",\"test\":{},\"with_privatization\":{}",
            pred_json(test),
            with_privatization
        ),
        ArrayVerdict::Blocking { dep, rejected } => {
            let mut s = format!("\"verdict\":\"blocking\",\"dependence\":{}", pred_json(dep));
            if let Some((test, why)) = rejected {
                s.push_str(&format!(
                    ",\"rejected_test\":{},\"reject_reason\":\"{}\"",
                    pred_json(test),
                    why.label()
                ));
            }
            s
        }
    };
    let dep: Vec<String> = a.dep_pairs.iter().map(pair_json).collect();
    let prv: Vec<String> = a.priv_pairs.iter().map(pair_json).collect();
    format!(
        "{{\"array\":\"{}\",{verdict},\"dep_pairs\":[{}],\"priv_pairs\":[{}]}}",
        esc(&a.array.name()),
        dep.join(","),
        prv.join(","),
    )
}

/// Render one loop's report (verdict + provenance) as a JSON object.
pub fn loop_json(report: &LoopReport) -> String {
    let p = &report.provenance;
    let mut out = format!(
        "{{\"id\":{},\"label\":{},\"proc\":\"{}\",\"depth\":{}",
        report.id.0,
        report
            .label
            .as_deref()
            .map(|l| format!("\"{}\"", esc(l)))
            .unwrap_or_else(|| "null".to_string()),
        esc(&report.proc),
        report.depth,
    );
    out.push_str(&format!(
        ",\"outcome\":\"{}\"",
        match &report.outcome {
            Outcome::Parallel => "parallel",
            Outcome::ParallelIf(_) => "parallel-if",
            Outcome::Sequential => "sequential",
        }
    ));
    if let Outcome::ParallelIf(t) = &report.outcome {
        out.push_str(&format!(",\"outcome_test\":{}", pred_json(t)));
    }
    out.push_str(&format!(
        ",\"not_candidate\":{}",
        report
            .not_candidate
            .map(|r| format!("\"{r}\""))
            .unwrap_or_else(|| "null".to_string())
    ));
    out.push_str(&format!(
        ",\"winner\":{}",
        p.winner
            .map(|w| format!("\"{}\"", w.label()))
            .unwrap_or_else(|| "null".to_string())
    ));
    let m = &report.mechanisms;
    out.push_str(&format!(
        ",\"mechanisms\":{{\"predicates\":{},\"embedding\":{},\"extraction\":{},\"runtime_test\":{}}}",
        m.predicates, m.embedding, m.extraction, m.runtime_test
    ));
    out.push_str(&format!(
        ",\"runtime_test\":{}",
        p.runtime_test
            .as_ref()
            .map(pred_json)
            .unwrap_or_else(|| "null".to_string())
    ));
    let arrays: Vec<String> = p.arrays.iter().map(array_json).collect();
    out.push_str(&format!(",\"arrays\":[{}]", arrays.join(",")));
    let scalars: Vec<String> = p
        .scalars
        .iter()
        .map(|s| {
            format!(
                "{{\"scalar\":\"{}\",\"verdict\":\"{}\"}}",
                esc(&s.scalar.name()),
                s.verdict.label()
            )
        })
        .collect();
    out.push_str(&format!(",\"scalars\":[{}]", scalars.join(",")));
    let reductions: Vec<String> = report
        .reductions
        .iter()
        .map(|r| {
            format!(
                "{{\"target\":\"{}\",\"op\":\"{:?}\",\"is_array\":{}}}",
                esc(&r.target.name()),
                r.op,
                r.is_array
            )
        })
        .collect();
    out.push_str(&format!(",\"reductions\":[{}]", reductions.join(",")));
    let embedded: Vec<String> = p
        .embedded
        .iter()
        .map(|v| format!("\"{}\"", esc(&v.name())))
        .collect();
    out.push_str(&format!(",\"embedded\":[{}]", embedded.join(",")));
    out.push_str(&format!(
        ",\"budget\":{}",
        p.budget
            .map(|b| format!("{{\"steps\":{}}}", b.steps))
            .unwrap_or_else(|| "null".to_string())
    ));
    out.push_str(&format!(
        ",\"limit_overflows\":{},\"lat_overflow\":{}}}",
        p.limit_overflows, p.lat_overflow
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_priority_order() {
        let m = |p, e, x, r| Mechanisms {
            predicates: p,
            embedding: e,
            extraction: x,
            runtime_test: r,
        };
        assert_eq!(
            Mechanism::winner(&m(false, false, false, false)),
            Mechanism::Base
        );
        assert_eq!(
            Mechanism::winner(&m(true, false, false, false)),
            Mechanism::Predicates
        );
        assert_eq!(
            Mechanism::winner(&m(true, true, false, false)),
            Mechanism::Embedding
        );
        assert_eq!(
            Mechanism::winner(&m(true, true, true, false)),
            Mechanism::Extraction
        );
        assert_eq!(
            Mechanism::winner(&m(true, true, true, true)),
            Mechanism::RuntimeTest
        );
    }

    #[test]
    fn blocker_detection() {
        let mut p = Provenance::default();
        assert!(!p.has_blocker());
        p.scalars.push(ScalarEvidence {
            scalar: Var::new("s"),
            verdict: ScalarVerdict::ExposedFlow,
        });
        assert!(p.has_blocker());
        let q = Provenance {
            budget: Some(BudgetEvent { steps: 7 }),
            ..Provenance::default()
        };
        assert!(q.has_blocker());
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }
}
