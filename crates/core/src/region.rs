//! Array section construction: canonical dimension variables and the
//! mapping from subscripted accesses to constraint systems.

use padfa_ir::{affine, Expr, Procedure};
use padfa_omega::{Constraint, Disjunction, LinExpr, System, Var};

/// The canonical variable naming dimension `d` (0-based) of `array`.
///
/// All sections of a given array use the same dimension variables, so
/// regions from different program points intersect and subtract directly.
pub fn dim_var(array: Var, d: usize) -> Var {
    Var::new(&format!("${}.{}", array.name(), d))
}

/// The primed copy of a loop index used for cross-iteration tests.
pub fn primed(v: Var) -> Var {
    Var::new(&format!("${}'", v.name()))
}

/// Declared-bounds constraints for an array: `1 <= $a.d <= extent_d` for
/// every dimension whose extent is affine.
pub fn decl_bounds(proc: &Procedure, array: Var) -> Vec<Constraint> {
    let mut out = Vec::new();
    if let Some(dims) = proc.array_dims(array) {
        for (d, ext) in dims.iter().enumerate() {
            let dv = dim_var(array, d);
            out.push(Constraint::geq(LinExpr::var(dv), LinExpr::constant(1)));
            if let Some(le) = affine::to_linexpr(ext) {
                out.push(Constraint::leq(LinExpr::var(dv), le));
            }
        }
    }
    out
}

/// The whole-array region (all declared elements). Exact when every
/// extent is affine.
pub fn whole_array(proc: &Procedure, array: Var) -> Disjunction {
    let dims = proc.array_dims(array).map(|d| d.len()).unwrap_or(0);
    let mut sys = System::universe();
    for c in decl_bounds(proc, array) {
        sys.push(c);
    }
    // Declared bounds are per-dimension constant windows, so the region
    // is born on the dense tier (push clears the cache; restore it).
    sys.classify_dense();
    let mut d = Disjunction::from_system(sys);
    // If some extent was non-affine we could not bound that dimension;
    // the region is still a sound over-approximation but not exact.
    if let Some(exts) = proc.array_dims(array) {
        if exts.iter().any(|e| affine::to_linexpr(e).is_none()) {
            d.set_inexact();
        }
    }
    let _ = dims;
    d
}

/// The section for a single access `array[subs...]`.
///
/// Returns `(region, exact)`: when every subscript is affine the region
/// is the exact single element `{ $a.d == sub_d }` (within declared
/// bounds); otherwise the affine subscripts constrain their dimensions
/// and the region is flagged inexact (a may-region covering the whole
/// extent of the non-affine dimensions).
pub fn access_section(proc: &Procedure, array: Var, subs: &[Expr]) -> Disjunction {
    let mut sys = System::universe();
    let mut exact = true;
    for (d, s) in subs.iter().enumerate() {
        let dv = dim_var(array, d);
        match affine::to_linexpr(s) {
            Some(le) => sys.push(Constraint::eq(LinExpr::var(dv), le)),
            None => exact = false,
        }
    }
    for c in decl_bounds(proc, array) {
        sys.push(c);
    }
    // Constant-subscript accesses within constant bounds classify dense;
    // symbolic subscripts (`$a.0 == i + 1`) legitimately stay general.
    sys.classify_dense();
    let mut out = Disjunction::from_system(sys);
    if !exact {
        out.set_inexact();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use padfa_ir::parse::parse_program;
    use padfa_omega::Limits;

    fn proc_with(src: &str) -> padfa_ir::Program {
        parse_program(src).unwrap()
    }

    #[test]
    fn dim_vars_are_stable() {
        let a = Var::new("a");
        assert_eq!(dim_var(a, 0), dim_var(a, 0));
        assert_ne!(dim_var(a, 0), dim_var(a, 1));
        assert_ne!(dim_var(a, 0), dim_var(Var::new("b"), 0));
    }

    #[test]
    fn whole_array_bounds() {
        let p = proc_with("proc m() { array a[10, 20]; }");
        let proc = &p.procedures[0];
        let w = whole_array(proc, Var::new("a"));
        assert!(w.is_exact());
        let d0 = dim_var(Var::new("a"), 0);
        let d1 = dim_var(Var::new("a"), 1);
        let at = |i: i64, j: i64| {
            w.contains(&|v| {
                if v == d0 {
                    Some(i)
                } else if v == d1 {
                    Some(j)
                } else {
                    None
                }
            })
            .unwrap()
        };
        assert!(at(1, 1));
        assert!(at(10, 20));
        assert!(!at(0, 1));
        assert!(!at(11, 1));
        assert!(!at(1, 21));
    }

    #[test]
    fn affine_access_is_single_element() {
        let p = proc_with("proc m(n: int) { array a[100]; for i = 1 to n { a[i + 1] = 0.0; } }");
        let proc = &p.procedures[0];
        let sect = access_section(
            proc,
            Var::new("a"),
            &[Expr::Add(
                Box::new(Expr::scalar("i")),
                Box::new(Expr::int(1)),
            )],
        );
        assert!(sect.is_exact());
        let d0 = dim_var(Var::new("a"), 0);
        let iv = Var::new("i");
        // With i = 4: only element 5 is in the section.
        let at = |x: i64| {
            sect.contains(&|v| {
                if v == d0 {
                    Some(x)
                } else if v == iv {
                    Some(4)
                } else {
                    None
                }
            })
            .unwrap()
        };
        assert!(at(5));
        assert!(!at(4));
        assert!(!at(6));
    }

    #[test]
    fn non_affine_access_is_inexact_whole_extent() {
        let p = proc_with(
            "proc m(n: int) { array a[100]; array idx[100] of int;
             for i = 1 to n { a[idx[i]] = 0.0; } }",
        );
        let proc = &p.procedures[0];
        let sect = access_section(
            proc,
            Var::new("a"),
            &[Expr::elem("idx", vec![Expr::scalar("i")])],
        );
        assert!(!sect.is_exact());
        // Region must still be bounded by the declaration.
        let d0 = dim_var(Var::new("a"), 0);
        let at = |x: i64| {
            sect.contains(&|v| if v == d0 { Some(x) } else { None })
                .unwrap()
        };
        assert!(at(1));
        assert!(at(100));
        assert!(!at(101));
    }

    #[test]
    fn sections_of_same_array_interact() {
        // Write a[i], read a[i-1]: sections must overlap after shifting.
        let p = proc_with("proc m(n: int) { array a[100]; for i = 2 to n { a[i] = a[i - 1]; } }");
        let proc = &p.procedures[0];
        let w = access_section(proc, Var::new("a"), &[Expr::scalar("i")]);
        let r = access_section(
            proc,
            Var::new("a"),
            &[Expr::Sub(
                Box::new(Expr::scalar("i")),
                Box::new(Expr::int(1)),
            )],
        );
        // Rename i -> i' in the read and intersect: nonempty (dependence).
        let rp = r.rename(Var::new("i"), primed(Var::new("i")));
        let inter = w.intersect(&rp, Limits::default());
        assert!(!inter.is_empty(Limits::default()));
    }
}
