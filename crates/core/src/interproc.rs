//! Interprocedural machinery: call graph ordering and translation of
//! callee summaries to call sites, including the `Reshape` operation
//! with its divisibility-predicate extraction.

use crate::component::PredComponent;
use crate::region::{dim_var, whole_array};
use crate::report::Mechanisms;
use crate::session::AnalysisSession;
use crate::summary::{ArraySummary, Summary};
use padfa_ir::affine;
use padfa_ir::ast::{Arg, Block, BoolExpr, Expr, ParamTy, Procedure, Program, Stmt};
use padfa_omega::{Constraint, Disjunction, LinExpr, System, Var};
use padfa_pred::Pred;
use std::collections::HashMap;

/// Bottom-up (callees first) ordering of procedure indices. Procedures
/// on call-graph cycles are reported in `recursive` and receive fully
/// conservative summaries.
///
/// `levels` partitions `order` into topological levels: every procedure
/// in level `k` only calls procedures in levels `< k` (ignoring cycle
/// back-edges, whose members get conservative summaries anyway), so all
/// procedures of one level can be analyzed concurrently once the
/// previous levels are done. The levels cover exactly the procedures of
/// `order` (each appears in exactly one level).
pub struct CallOrder {
    pub order: Vec<usize>,
    pub recursive: Vec<usize>,
    pub levels: Vec<Vec<usize>>,
}

/// Direct callee names of a procedure, in syntactic order.
pub(crate) fn callees(p: &Procedure, out: &mut Vec<String>) {
    fn walk(b: &Block, out: &mut Vec<String>) {
        for s in &b.stmts {
            match s {
                Stmt::Call { callee, .. } => out.push(callee.clone()),
                Stmt::If {
                    then_blk, else_blk, ..
                } => {
                    walk(then_blk, out);
                    walk(else_blk, out);
                }
                Stmt::For(l) => walk(&l.body, out),
                _ => {}
            }
        }
    }
    walk(&p.body, out);
}

/// Compute the call order by depth-first search.
pub fn call_order(prog: &Program) -> CallOrder {
    let index: HashMap<&str, usize> = prog
        .procedures
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name.as_str(), i))
        .collect();

    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = prog.procedures.len();
    let mut marks = vec![Mark::White; n];
    let mut order = Vec::new();
    let mut recursive = Vec::new();

    fn dfs(
        i: usize,
        prog: &Program,
        index: &HashMap<&str, usize>,
        marks: &mut Vec<Mark>,
        order: &mut Vec<usize>,
        recursive: &mut Vec<usize>,
    ) {
        marks[i] = Mark::Grey;
        let mut cs = Vec::new();
        callees(&prog.procedures[i], &mut cs);
        for c in cs {
            if let Some(&j) = index.get(c.as_str()) {
                match marks[j] {
                    Mark::White => dfs(j, prog, index, marks, order, recursive),
                    Mark::Grey => {
                        if !recursive.contains(&j) {
                            recursive.push(j);
                        }
                        if !recursive.contains(&i) {
                            recursive.push(i);
                        }
                    }
                    Mark::Black => {}
                }
            }
        }
        marks[i] = Mark::Black;
        order.push(i);
    }

    for i in 0..n {
        if marks[i] == Mark::White {
            dfs(i, prog, &index, &mut marks, &mut order, &mut recursive);
        }
    }

    // Assign topological levels along the postorder: a procedure sits one
    // level above its deepest already-levelled callee. Callees not yet
    // levelled are back-edges of a cycle; they are ignored, which is
    // sound because cycle members receive conservative summaries that
    // consult no callee summary at all, and the postorder still places
    // them before their external callers.
    let mut level = vec![usize::MAX; n];
    let mut levels: Vec<Vec<usize>> = Vec::new();
    for &i in &order {
        let mut cs = Vec::new();
        callees(&prog.procedures[i], &mut cs);
        let mut lv = 0;
        for c in cs {
            if let Some(&j) = index.get(c.as_str()) {
                if j != i && level[j] != usize::MAX {
                    lv = lv.max(level[j] + 1);
                }
            }
        }
        level[i] = lv;
        if levels.len() <= lv {
            levels.resize(lv + 1, Vec::new());
        }
        levels[lv].push(i);
    }
    CallOrder {
        order,
        recursive,
        levels,
    }
}

/// Fully conservative summary for a procedure (used for recursion):
/// every array parameter may be read and written anywhere, with exposed
/// reads; the region performs I/O so enclosing loops are disqualified.
pub fn conservative_summary(proc: &Procedure) -> Summary {
    let mut s = Summary::empty();
    for p in &proc.params {
        if let ParamTy::Array { .. } = p.ty {
            let region = whole_array(proc, p.name).inexact();
            let a = s.array_mut(p.name);
            a.mw = PredComponent::unconditional(region.clone());
            a.r = PredComponent::unconditional(region.clone());
            a.e = PredComponent::unconditional(region);
        } else {
            s.read_scalar(p.name);
        }
    }
    s.has_io = true;
    s
}

/// The sound degraded summary substituted for a procedure whose work
/// budget ran out: the conservative summary (may-read/may-write = the
/// whole declared extent of every array parameter, inexact; exposed
/// reads everywhere; no must-writes; `has_io` so enclosing loops are
/// disqualified) tagged `degraded`. Every component over-approximates
/// (W under-approximates as ∅), so replacing any exact summary with this
/// one can only *lose* parallel loops downstream — never invent one.
pub fn degraded_summary(proc: &Procedure) -> Summary {
    let mut s = conservative_summary(proc);
    s.degraded = true;
    s
}

fn subst_expr(e: &Expr, map: &HashMap<Var, Expr>) -> Expr {
    match e {
        Expr::IntLit(_) | Expr::RealLit(_) => e.clone(),
        Expr::Scalar(v) => map.get(v).cloned().unwrap_or_else(|| e.clone()),
        Expr::Elem(a, idxs) => Expr::Elem(*a, idxs.iter().map(|i| subst_expr(i, map)).collect()),
        Expr::Add(a, b) => Expr::Add(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Sub(a, b) => Expr::Sub(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Mul(a, b) => Expr::Mul(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Div(a, b) => Expr::Div(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Mod(a, b) => Expr::Mod(Box::new(subst_expr(a, map)), Box::new(subst_expr(b, map))),
        Expr::Neg(a) => Expr::Neg(Box::new(subst_expr(a, map))),
        Expr::Call(i, args) => Expr::Call(*i, args.iter().map(|a| subst_expr(a, map)).collect()),
    }
}

fn subst_bool(b: &BoolExpr, map: &HashMap<Var, Expr>) -> BoolExpr {
    match b {
        BoolExpr::Lit(_) => b.clone(),
        BoolExpr::Cmp(op, x, y) => BoolExpr::Cmp(*op, subst_expr(x, map), subst_expr(y, map)),
        BoolExpr::And(x, y) => BoolExpr::and(subst_bool(x, map), subst_bool(y, map)),
        BoolExpr::Or(x, y) => BoolExpr::or(subst_bool(x, map), subst_bool(y, map)),
        BoolExpr::Not(x) => BoolExpr::not(subst_bool(x, map)),
    }
}

/// Substitute actual expressions for formal scalars inside a predicate.
pub fn subst_pred(p: &Pred, map: &HashMap<Var, Expr>) -> Pred {
    if map.is_empty() {
        return p.clone();
    }
    Pred::from_bool(&subst_bool(&p.to_bool_expr(), map))
}

/// Translate one component across the call boundary.
#[allow(clippy::too_many_arguments)]
fn translate_component(
    comp: &PredComponent,
    formal: Var,
    actual: Var,
    callee: &Procedure,
    caller: &Procedure,
    scalar_map: &HashMap<Var, Expr>,
    affine_map: &HashMap<Var, LinExpr>,
    non_affine_formals: &[Var],
    is_must: bool,
    sess: &AnalysisSession,
    mechanisms: &mut Mechanisms,
) -> PredComponent {
    // Callee extents in two forms: raw (over formal scalars, matching the
    // variables still present in non-substituted regions) and substituted
    // (caller-side expressions, used for shape comparison and run-time
    // guards).
    let callee_dims_raw: Vec<Expr> = callee
        .array_dims(formal)
        .map(|d| d.to_vec())
        .unwrap_or_default();
    let callee_dims: Vec<Expr> = callee_dims_raw
        .iter()
        .map(|e| subst_expr(e, scalar_map))
        .collect();
    let caller_dims: Vec<Expr> = caller
        .array_dims(actual)
        .map(|d| d.to_vec())
        .unwrap_or_default();

    let mut out = PredComponent::empty();
    for piece in &comp.pieces {
        let pred = subst_pred(&piece.pred, scalar_map);
        if pred.is_false() {
            continue;
        }
        // Substitute affine actuals for scalar formals inside the region.
        // Formals with non-affine actuals keep their own variable; the
        // reshape full-coverage case can still reason about them, and any
        // other path must degrade.
        let mut region = (*piece.region).clone();
        for (f, le) in affine_map {
            region = region.subst(*f, le);
        }
        let mentions_untranslatable = non_affine_formals.iter().any(|f| region.vars().contains(f));

        let same_shape = callee_dims.len() == caller_dims.len()
            && callee_dims.iter().zip(&caller_dims).all(|(a, b)| {
                match (affine::to_linexpr(a), affine::to_linexpr(b)) {
                    (Some(x), Some(y)) => x == y,
                    _ => a == b,
                }
            });

        if same_shape && !mentions_untranslatable {
            for d in 0..callee_dims.len().max(1) {
                region = region.rename(dim_var(formal, d), dim_var(actual, d));
            }
            out.push(pred, region);
            continue;
        }

        // Reshape.
        match reshape_region(
            &region,
            formal,
            actual,
            &callee_dims_raw,
            &callee_dims,
            &caller_dims,
            mentions_untranslatable,
            caller,
            sess,
            mechanisms,
        ) {
            ReshapeResult::Exact(r) => out.push(pred, r),
            ReshapeResult::Guarded { optimistic, guard } => {
                // Optimistic whole-array piece under the extracted
                // divisibility/size predicate, plus the conservative
                // default for may components.
                out.push(Pred::and(pred.clone(), guard), optimistic);
                if !is_must {
                    out.push(pred, whole_array(caller, actual).inexact());
                }
            }
            ReshapeResult::Conservative => {
                if !is_must {
                    out.push(pred, whole_array(caller, actual).inexact());
                }
            }
        }
    }
    out
}

/// The paper's `Reshape` extraction: when the callee accesses its whole
/// declared extent `[1..m]`, the caller's array is fully covered exactly
/// when the total sizes agree (`m == r*c` — the divisibility/size
/// condition). Returns an optimistic whole-array piece guarded by that
/// run-time-testable predicate.
///
/// The subset check runs in the callee's own terms (using the raw formal
/// extent, which may still appear as a variable in the region); the
/// guard is rendered in caller terms using the substituted extents.
#[allow(clippy::too_many_arguments)]
fn reshape_full_coverage(
    region: &Disjunction,
    formal: Var,
    actual: Var,
    callee_dims_raw: &[Expr],
    callee_dims: &[Expr],
    caller_dims: &[Expr],
    caller: &Procedure,
    sess: &AnalysisSession,
    mechanisms: &mut Mechanisms,
) -> ReshapeResult {
    if !sess.opts.extraction || callee_dims_raw.len() != 1 || caller_dims.len() != 2 {
        return ReshapeResult::Conservative;
    }
    let Some(m_raw) = affine::to_linexpr(&callee_dims_raw[0]) else {
        return ReshapeResult::Conservative;
    };
    let f0 = dim_var(formal, 0);
    let full = Disjunction::from_system(System::from_constraints([
        Constraint::geq(LinExpr::var(f0), LinExpr::constant(1)),
        Constraint::leq(LinExpr::var(f0), m_raw),
    ]));
    // Compare against the *unsubstituted* region so the formal extent
    // variable lines up.
    if region.is_exact() && sess.subset_of(&full, region) {
        mechanisms.extraction = true;
        let guard = Pred::from_bool(&BoolExpr::cmp(
            padfa_ir::CmpOp::Eq,
            callee_dims[0].clone(),
            Expr::Mul(
                Box::new(caller_dims[0].clone()),
                Box::new(caller_dims[1].clone()),
            ),
        ));
        return ReshapeResult::Guarded {
            optimistic: whole_array(caller, actual),
            guard,
        };
    }
    ReshapeResult::Conservative
}

enum ReshapeResult {
    Exact(Disjunction),
    Guarded {
        optimistic: Disjunction,
        guard: Pred,
    },
    Conservative,
}

/// Translate a region across an array-shape change (`Reshape`).
///
/// Arrays are row-major and 1-based, so the linearized offset of
/// `A[a0, a1]` (shape `[r, c]`) is `(a0-1)*c + (a1-1)`. Three cases:
///
/// 1. rank 1 ↔ rank 1: offsets coincide; rename and re-bound.
/// 2. rank change with *constant* minor extent: the linearization is an
///    affine relation; translate exactly by constraint + projection.
/// 3. full-coverage with symbolic sizes: if the callee accesses its
///    entire declared extent `[1..m]`, the caller's whole array is
///    covered exactly when `m == r*c` — an extracted, run-time-testable
///    predicate (the paper's divisibility test from delinearization).
#[allow(clippy::too_many_arguments)]
fn reshape_region(
    region: &Disjunction,
    formal: Var,
    actual: Var,
    callee_dims_raw: &[Expr],
    callee_dims: &[Expr],
    caller_dims: &[Expr],
    mentions_untranslatable: bool,
    caller: &Procedure,
    sess: &AnalysisSession,
    mechanisms: &mut Mechanisms,
) -> ReshapeResult {
    let limits = sess.opts.limits;
    // The affine translation cases require the region to be fully in
    // caller terms already.
    if mentions_untranslatable {
        return reshape_full_coverage(
            region,
            formal,
            actual,
            callee_dims_raw,
            callee_dims,
            caller_dims,
            caller,
            sess,
            mechanisms,
        );
    }
    // Case 1: rank 1 -> rank 1 (different extents).
    if callee_dims.len() == 1 && caller_dims.len() == 1 {
        let mut r = region.rename(dim_var(formal, 0), dim_var(actual, 0));
        let mut clamped = Disjunction::empty();
        for sys in r.systems() {
            let mut s = sys.clone();
            for c in crate::region::decl_bounds(caller, actual) {
                s.push(c);
            }
            clamped.push(s);
        }
        if !r.is_exact() {
            clamped.set_inexact();
        }
        r = clamped;
        return ReshapeResult::Exact(r);
    }

    // Case 2: rank 1 -> rank 2 with constant minor extent.
    if callee_dims.len() == 1 && caller_dims.len() == 2 {
        if let Some(c_ext) = affine::to_linexpr(&caller_dims[1]).filter(|l| l.is_const()) {
            let c = c_ext.konst();
            if c > 0 {
                let f0 = dim_var(formal, 0);
                let a0 = dim_var(actual, 0);
                let a1 = dim_var(actual, 1);
                let mut out = Disjunction::empty();
                let mut exact = region.is_exact();
                for sys in region.systems() {
                    let mut s = sys.clone();
                    // f0 == (a0-1)*c + a1
                    s.push(Constraint::eq(
                        LinExpr::var(f0),
                        LinExpr::term(a0, c) - LinExpr::constant(c) + LinExpr::var(a1),
                    ));
                    for cb in crate::region::decl_bounds(caller, actual) {
                        s.push(cb);
                    }
                    let p = s.project_out(&[f0], limits);
                    exact &= p.exact;
                    out.push(p.system);
                }
                if !exact {
                    out.set_inexact();
                }
                return ReshapeResult::Exact(out);
            }
        }
        // Case 3: full coverage under a size-equality predicate.
        return reshape_full_coverage(
            region,
            formal,
            actual,
            callee_dims_raw,
            callee_dims,
            caller_dims,
            caller,
            sess,
            mechanisms,
        );
    }

    // Case 1': rank 2 -> rank 2 with the same minor extent (a common
    // Fortran idiom: pass a larger/smaller matrix with identical row
    // length). The row-major offsets coincide coordinate-wise, so both
    // dimension variables rename directly; caller bounds clamp the rows.
    if callee_dims.len() == 2 && caller_dims.len() == 2 {
        let minor_equal = match (
            affine::to_linexpr(&callee_dims[1]),
            affine::to_linexpr(&caller_dims[1]),
        ) {
            (Some(a), Some(b)) => a == b,
            _ => callee_dims[1] == caller_dims[1],
        };
        if minor_equal {
            let mut r = region
                .rename(dim_var(formal, 0), dim_var(actual, 0))
                .rename(dim_var(formal, 1), dim_var(actual, 1));
            let mut clamped = Disjunction::empty();
            for sys in r.systems() {
                let mut s = sys.clone();
                for c in crate::region::decl_bounds(caller, actual) {
                    s.push(c);
                }
                clamped.push(s);
            }
            if !r.is_exact() {
                clamped.set_inexact();
            }
            r = clamped;
            return ReshapeResult::Exact(r);
        }
        return ReshapeResult::Conservative;
    }

    // Case 2': rank 2 -> rank 1 with constant minor extent on the callee.
    if callee_dims.len() == 2 && caller_dims.len() == 1 {
        if let Some(c_ext) = affine::to_linexpr(&callee_dims[1]).filter(|l| l.is_const()) {
            let c = c_ext.konst();
            if c > 0 {
                let f0 = dim_var(formal, 0);
                let f1 = dim_var(formal, 1);
                let a0 = dim_var(actual, 0);
                let mut out = Disjunction::empty();
                let mut exact = region.is_exact();
                for sys in region.systems() {
                    let mut s = sys.clone();
                    s.push(Constraint::eq(
                        LinExpr::var(a0),
                        LinExpr::term(f0, c) - LinExpr::constant(c) + LinExpr::var(f1),
                    ));
                    for cb in crate::region::decl_bounds(caller, actual) {
                        s.push(cb);
                    }
                    let p = s.project_out(&[f0, f1], limits);
                    exact &= p.exact;
                    out.push(p.system);
                }
                if !exact {
                    out.set_inexact();
                }
                return ReshapeResult::Exact(out);
            }
        }
        return ReshapeResult::Conservative;
    }

    ReshapeResult::Conservative
}

/// Translate a callee's procedure summary to a call site.
pub fn translate_call(
    callee_summary: &Summary,
    callee: &Procedure,
    caller: &Procedure,
    args: &[Arg],
    sess: &AnalysisSession,
    mechanisms: &mut Mechanisms,
) -> Summary {
    let mut out = Summary::empty();
    out.has_io = callee_summary.has_io;
    // Internal exits are local to the callee's own loops.
    out.has_exit = false;
    // A degraded callee taints the call-site summary so the imprecision
    // stays visible (soundness needs nothing more: the degraded summary
    // already carries ⊤ may-regions and `has_io`).
    out.degraded = callee_summary.degraded;

    // Bind scalar formals.
    let mut scalar_map: HashMap<Var, Expr> = HashMap::new();
    let mut affine_map: HashMap<Var, LinExpr> = HashMap::new();
    let mut non_affine: Vec<Var> = Vec::new();
    let mut array_binding: HashMap<Var, Var> = HashMap::new();
    for (param, arg) in callee.params.iter().zip(args) {
        match (&param.ty, arg) {
            (ParamTy::Scalar(_), Arg::Scalar(e)) => {
                scalar_map.insert(param.name, e.clone());
                match affine::to_linexpr(e) {
                    Some(l) => {
                        affine_map.insert(param.name, l);
                    }
                    None => non_affine.push(param.name),
                }
                // The call reads the actual's scalars.
                let mut vs = Vec::new();
                e.scalar_vars(&mut vs);
                for v in vs {
                    out.read_scalar(v);
                }
            }
            (ParamTy::Scalar(_), Arg::Array(v)) => {
                // Parser ambiguity: a bare scalar name.
                scalar_map.insert(param.name, Expr::Scalar(*v));
                affine_map.insert(param.name, LinExpr::var(*v));
                out.read_scalar(*v);
            }
            (ParamTy::Array { .. }, Arg::Array(v)) => {
                array_binding.insert(param.name, *v);
            }
            (ParamTy::Array { .. }, Arg::Scalar(_)) => {
                // Rejected by the resolver; ignore defensively.
            }
        }
    }

    for (&formal, asum) in &callee_summary.arrays {
        let Some(&actual) = array_binding.get(&formal) else {
            // Local array of the callee: invisible to the caller.
            continue;
        };
        let tr = |comp: &PredComponent, is_must: bool, mech: &mut Mechanisms| {
            translate_component(
                comp,
                formal,
                actual,
                callee,
                caller,
                &scalar_map,
                &affine_map,
                &non_affine,
                is_must,
                sess,
                mech,
            )
        };
        let mut a = ArraySummary {
            w: tr(&asum.w, true, mechanisms),
            mw: tr(&asum.mw, false, mechanisms),
            r: tr(&asum.r, false, mechanisms),
            e: tr(&asum.e, false, mechanisms),
        };
        let opts = &sess.opts;
        a.w.normalize(opts.max_pieces, false, sess);
        a.mw.normalize(opts.max_pieces, true, sess);
        a.r.normalize(opts.max_pieces, true, sess);
        a.e.normalize(opts.max_pieces, true, sess);
        out.arrays.insert(actual, a);
    }

    // Exposed scalar reads of formals become reads of the actual's vars
    // (already recorded above when binding).
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::Options;
    use padfa_ir::parse::parse_program;

    fn sess() -> AnalysisSession {
        AnalysisSession::new(Options::predicated())
    }

    #[test]
    fn call_order_bottom_up() {
        let p = parse_program(
            "proc a() { call b(); call c(); }
             proc b() { call c(); }
             proc c() { }",
        )
        .unwrap();
        let co = call_order(&p);
        assert!(co.recursive.is_empty());
        let pos = |name: &str| {
            let idx = p.procedures.iter().position(|x| x.name == name).unwrap();
            co.order.iter().position(|&i| i == idx).unwrap()
        };
        assert!(pos("c") < pos("b"));
        assert!(pos("b") < pos("a"));
    }

    #[test]
    fn recursion_detected() {
        let p = parse_program(
            "proc a() { call b(); }
             proc b() { call a(); }",
        )
        .unwrap();
        let co = call_order(&p);
        assert_eq!(co.recursive.len(), 2);
    }

    #[test]
    fn levels_partition_topologically() {
        let p = parse_program(
            "proc a() { call b(); call c(); }
             proc b() { call c(); }
             proc c() { }
             proc d() { }",
        )
        .unwrap();
        let co = call_order(&p);
        let idx = |name: &str| p.procedures.iter().position(|x| x.name == name).unwrap();
        let level_of = |i: usize| co.levels.iter().position(|l| l.contains(&i)).unwrap();
        // The levels partition exactly the procedures of `order`.
        let mut flat: Vec<usize> = co.levels.iter().flatten().copied().collect();
        flat.sort_unstable();
        let mut all = co.order.clone();
        all.sort_unstable();
        assert_eq!(flat, all);
        assert_eq!(level_of(idx("c")), 0);
        assert_eq!(level_of(idx("d")), 0, "leaf with no callees is level 0");
        assert_eq!(level_of(idx("b")), 1);
        assert_eq!(level_of(idx("a")), 2);
        // Every callee sits strictly below its caller.
        for (i, proc) in p.procedures.iter().enumerate() {
            let mut cs = Vec::new();
            callees(proc, &mut cs);
            for c in cs {
                let j = idx(&c);
                assert!(level_of(j) < level_of(i), "{c} not below {}", proc.name);
            }
        }
    }

    #[test]
    fn self_recursion_detected_and_levelled_once() {
        let p = parse_program(
            "proc a() { call a(); }
             proc main() { call a(); }",
        )
        .unwrap();
        let co = call_order(&p);
        let ia = p.procedures.iter().position(|x| x.name == "a").unwrap();
        assert!(
            co.recursive.contains(&ia),
            "self-recursion must be detected"
        );
        // Each procedure appears exactly once across all levels.
        let mut flat: Vec<usize> = co.levels.iter().flatten().copied().collect();
        flat.sort_unstable();
        assert_eq!(flat, vec![0, 1]);
        // The caller of the cycle still sits above it.
        let level_of = |i: usize| co.levels.iter().position(|l| l.contains(&i)).unwrap();
        let im = p.procedures.iter().position(|x| x.name == "main").unwrap();
        assert!(level_of(im) > level_of(ia));
    }

    #[test]
    fn mutual_recursion_levels_stay_below_external_caller() {
        let p = parse_program(
            "proc a() { call b(); }
             proc b() { call a(); }
             proc main() { call a(); call b(); }",
        )
        .unwrap();
        let co = call_order(&p);
        assert_eq!(co.recursive.len(), 2);
        let flat: Vec<usize> = co.levels.iter().flatten().copied().collect();
        assert_eq!(flat.len(), 3, "each procedure levelled exactly once");
        let level_of = |i: usize| co.levels.iter().position(|l| l.contains(&i)).unwrap();
        let idx = |name: &str| p.procedures.iter().position(|x| x.name == name).unwrap();
        assert!(level_of(idx("main")) > level_of(idx("a")));
        assert!(level_of(idx("main")) > level_of(idx("b")));
    }

    #[test]
    fn conservative_summary_shape() {
        let p = parse_program("proc f(n: int, a: array[10]) { }").unwrap();
        let s = conservative_summary(&p.procedures[0]);
        assert!(s.has_io);
        let a = &s.arrays[&Var::new("a")];
        assert!(a.w.is_empty());
        assert!(!a.mw.is_empty());
        assert!(!a.mw.pieces[0].region.is_exact());
    }

    #[test]
    fn same_shape_translation_renames() {
        // Callee writes b[1..m]; caller passes a (same shape [10]), m=10.
        let p = parse_program(
            "proc callee(b: array[10], m: int) {
                 for j = 1 to m { b[j] = 0.0; }
             }
             proc main() { array a[10]; call callee(a, 10); }",
        )
        .unwrap();
        let callee = p.proc("callee").unwrap();
        let caller = p.proc("main").unwrap();
        // Build the callee summary by hand: W = {1 <= $b.0 <= m}.
        let mut cs = Summary::empty();
        let region = Disjunction::from_system(System::from_constraints([
            Constraint::geq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(1),
            ),
            Constraint::leq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::var(Var::new("m")),
            ),
        ]));
        cs.array_mut(Var::new("b")).w = PredComponent::unconditional(region.clone());
        cs.array_mut(Var::new("b")).mw = PredComponent::unconditional(region);

        let args = vec![Arg::Array(Var::new("a")), Arg::Scalar(Expr::int(10))];
        let mut mech = Mechanisms::default();
        let s = sess();
        let t = translate_call(&cs, callee, caller, &args, &s, &mut mech);
        let w = t.arrays[&Var::new("a")].w.must_region(&Pred::True, &s);
        let d = dim_var(Var::new("a"), 0);
        assert_eq!(
            w.contains(&|v| if v == d { Some(10) } else { None }),
            Some(true)
        );
        assert_eq!(
            w.contains(&|v| if v == d { Some(11) } else { None }),
            Some(false)
        );
    }

    #[test]
    fn reshape_constant_minor_extent_is_exact() {
        // Callee linear b[1..20] onto caller a[4, 5] covers everything.
        let p = parse_program(
            "proc callee(b: array[20]) { for j = 1 to 20 { b[j] = 0.0; } }
             proc main() { array a[4, 5]; call callee(a); }",
        )
        .unwrap();
        let callee = p.proc("callee").unwrap();
        let caller = p.proc("main").unwrap();
        let mut cs = Summary::empty();
        let region = Disjunction::from_system(System::from_constraints([
            Constraint::geq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(1),
            ),
            Constraint::leq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(20),
            ),
        ]));
        cs.array_mut(Var::new("b")).w = PredComponent::unconditional(region);
        let args = vec![Arg::Array(Var::new("a"))];
        let mut mech = Mechanisms::default();
        let s = sess();
        let t = translate_call(&cs, callee, caller, &args, &s, &mut mech);
        let w = t.arrays[&Var::new("a")].w.must_region(&Pred::True, &s);
        let d0 = dim_var(Var::new("a"), 0);
        let d1 = dim_var(Var::new("a"), 1);
        let at = |i: i64, j: i64| {
            w.contains(&|v| {
                if v == d0 {
                    Some(i)
                } else if v == d1 {
                    Some(j)
                } else {
                    None
                }
            })
            .unwrap()
        };
        assert!(at(1, 1));
        assert!(at(4, 5));
        assert!(at(2, 3));
        assert!(!at(5, 1));
    }

    #[test]
    fn reshape_symbolic_full_coverage_extracts_divisibility_guard() {
        // Callee covers b[1..m] fully; caller array a[r, c] with symbolic
        // r, c: optimistic piece guarded by m == r * c.
        let p = parse_program(
            "proc callee(b: array[m], m: int) { for j = 1 to m { b[j] = 0.0; } }
             proc main(r: int, c: int, m: int) { array a[r, c]; call callee(a, m); }",
        )
        .unwrap();
        let callee = p.proc("callee").unwrap();
        let caller = p.proc("main").unwrap();
        let mut cs = Summary::empty();
        let region = Disjunction::from_system(System::from_constraints([
            Constraint::geq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(1),
            ),
            Constraint::leq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::var(Var::new("m")),
            ),
        ]));
        cs.array_mut(Var::new("b")).w = PredComponent::unconditional(region);
        let args = vec![Arg::Array(Var::new("a")), Arg::Scalar(Expr::scalar("m"))];
        let mut mech = Mechanisms::default();
        let t = translate_call(&cs, callee, caller, &args, &sess(), &mut mech);
        assert!(mech.extraction, "divisibility guard must be extracted");
        let w = &t.arrays[&Var::new("a")].w;
        assert_eq!(w.pieces.len(), 1);
        let guard = &w.pieces[0].pred;
        assert!(!guard.is_true());
        assert!(guard.is_runtime_testable());
        // Guard references m, r, c.
        let vars = guard.scalar_vars();
        for name in ["m", "r", "c"] {
            assert!(
                vars.contains(&Var::new(name)),
                "guard {guard} missing {name}"
            );
        }
    }

    #[test]
    fn reshape_rank2_equal_minor_extent_is_exact() {
        // Callee sees the first 3 rows of the caller's 8x5 matrix.
        let p = parse_program(
            "proc top(b: array[3, 5]) { for j = 1 to 3 { b[j, 1] = 0.0; } }
             proc main() { array a[8, 5]; call top(a); }",
        )
        .unwrap();
        let callee = p.proc("top").unwrap();
        let caller = p.proc("main").unwrap();
        let mut cs = Summary::empty();
        let region = Disjunction::from_system(System::from_constraints([
            Constraint::geq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(1),
            ),
            Constraint::leq(
                LinExpr::var(dim_var(Var::new("b"), 0)),
                LinExpr::constant(3),
            ),
            Constraint::eq(
                LinExpr::var(dim_var(Var::new("b"), 1)),
                LinExpr::constant(1),
            ),
        ]));
        cs.array_mut(Var::new("b")).w = PredComponent::unconditional(region);
        let args = vec![Arg::Array(Var::new("a"))];
        let mut mech = Mechanisms::default();
        let s = sess();
        let t = translate_call(&cs, callee, caller, &args, &s, &mut mech);
        let w = t.arrays[&Var::new("a")].w.must_region(&Pred::True, &s);
        let d0 = dim_var(Var::new("a"), 0);
        let d1 = dim_var(Var::new("a"), 1);
        let at = |i: i64, j: i64| {
            w.contains(&|v| {
                if v == d0 {
                    Some(i)
                } else if v == d1 {
                    Some(j)
                } else {
                    None
                }
            })
            .unwrap()
        };
        assert!(at(1, 1));
        assert!(at(3, 1));
        assert!(!at(4, 1), "rows beyond the callee view are untouched");
        assert!(!at(1, 2));
    }

    #[test]
    fn non_affine_actual_degrades() {
        let p = parse_program(
            "proc callee(b: array[10], k: int) { b[k] = 0.0; }
             proc main() { array a[10]; array idx[4] of int;
                           call callee(a, idx[1]); }",
        )
        .unwrap();
        let callee = p.proc("callee").unwrap();
        let caller = p.proc("main").unwrap();
        let mut cs = Summary::empty();
        let region = Disjunction::from_system(System::from_constraints([Constraint::eq(
            LinExpr::var(dim_var(Var::new("b"), 0)),
            LinExpr::var(Var::new("k")),
        )]));
        cs.array_mut(Var::new("b")).w = PredComponent::unconditional(region.clone());
        cs.array_mut(Var::new("b")).mw = PredComponent::unconditional(region);
        let args = vec![
            Arg::Array(Var::new("a")),
            Arg::Scalar(Expr::elem("idx", vec![Expr::int(1)])),
        ];
        let mut mech = Mechanisms::default();
        let t = translate_call(&cs, callee, caller, &args, &sess(), &mut mech);
        let a = &t.arrays[&Var::new("a")];
        assert!(a.w.is_empty(), "must-write must drop");
        assert!(!a.mw.is_empty(), "may-write survives conservatively");
        assert!(!a.mw.pieces[0].region.is_exact());
    }
}
