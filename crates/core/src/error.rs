//! Typed analysis errors.
//!
//! The analysis pipeline never panics on user input: every failure mode
//! is classified into one [`AnalysisError`] variant so drivers (the
//! `padfa` CLI, the corpus runner, tests) can react with distinct exit
//! codes and keep batch runs alive. Budget exhaustion only surfaces as
//! an error under [`OnExhausted::Error`]; the default policy degrades
//! the affected procedure to a sound conservative summary instead (see
//! [`crate::budget`]).
//!
//! [`OnExhausted::Error`]: crate::budget::OnExhausted::Error

use padfa_ir::parse::ParseError;
use std::fmt;

/// Why an analysis run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The source text failed to parse. Carries the span so drivers can
    /// render `file:line:col` diagnostics.
    Parse(ParseError),
    /// The program parsed but violates an IR invariant the analysis
    /// relies on.
    MalformedIr(String),
    /// A procedure exhausted its [`crate::budget::WorkBudget`] and the
    /// budget policy was [`crate::budget::OnExhausted::Error`].
    BudgetExhausted {
        /// Procedure under analysis when the budget ran out.
        proc: String,
        /// Lattice-operation steps charged before exhaustion.
        steps: u64,
    },
    /// An internal invariant failed (a bug in the analysis, surfaced as
    /// a typed error instead of a crash).
    Internal(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Parse(e) => write!(f, "{e}"),
            AnalysisError::MalformedIr(m) => write!(f, "malformed IR: {m}"),
            AnalysisError::BudgetExhausted { proc, steps } => {
                write!(f, "work budget exhausted in '{proc}' after {steps} steps")
            }
            AnalysisError::Internal(m) => write!(f, "internal analysis error: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ParseError> for AnalysisError {
    fn from(e: ParseError) -> AnalysisError {
        AnalysisError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = AnalysisError::BudgetExhausted {
            proc: "main".into(),
            steps: 42,
        };
        assert_eq!(
            e.to_string(),
            "work budget exhausted in 'main' after 42 steps"
        );
        let p: AnalysisError = ParseError {
            msg: "boom".into(),
            line: 3,
            col: 7,
        }
        .into();
        assert!(p.to_string().contains("3:7"));
        assert!(AnalysisError::Internal("x".into())
            .to_string()
            .contains("x"));
        assert!(AnalysisError::MalformedIr("y".into())
            .to_string()
            .contains("y"));
    }
}
