//! Typed analysis errors.
//!
//! The analysis pipeline never panics on user input: every failure mode
//! is classified into one [`AnalysisError`] variant so drivers (the
//! `padfa` CLI, the corpus runner, tests) can react with distinct exit
//! codes and keep batch runs alive. Budget exhaustion only surfaces as
//! an error under [`OnExhausted::Error`]; the default policy degrades
//! the affected procedure to a sound conservative summary instead (see
//! [`crate::budget`]).
//!
//! [`OnExhausted::Error`]: crate::budget::OnExhausted::Error

use padfa_ir::parse::ParseError;
use std::fmt;

/// Why an analysis run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnalysisError {
    /// The source text failed to parse. Carries the span so drivers can
    /// render `file:line:col` diagnostics.
    Parse(ParseError),
    /// The program parsed but violates an IR invariant the analysis
    /// relies on.
    MalformedIr(String),
    /// A procedure exhausted its [`crate::budget::WorkBudget`] and the
    /// budget policy was [`crate::budget::OnExhausted::Error`].
    BudgetExhausted {
        /// Procedure under analysis when the budget ran out.
        proc: String,
        /// Lattice-operation steps charged before exhaustion.
        steps: u64,
    },
    /// An internal invariant failed (a bug in the analysis, surfaced as
    /// a typed error instead of a crash).
    Internal(String),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::Parse(e) => write!(f, "{e}"),
            AnalysisError::MalformedIr(m) => write!(f, "malformed IR: {m}"),
            AnalysisError::BudgetExhausted { proc, steps } => {
                write!(f, "work budget exhausted in '{proc}' after {steps} steps")
            }
            AnalysisError::Internal(m) => write!(f, "internal analysis error: {m}"),
        }
    }
}

impl std::error::Error for AnalysisError {}

impl From<ParseError> for AnalysisError {
    fn from(e: ParseError) -> AnalysisError {
        AnalysisError::Parse(e)
    }
}

/// A persistent-store failure. Never fatal: every variant is collected
/// as a warning while the session degrades to recomputation (in-memory
/// analysis is always available), so a broken cache can slow a run down
/// but can never change its output or crash it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An IO operation on the store directory failed; the session
    /// continues without persistence (or without the affected side).
    Io {
        /// Which operation failed (`open`, `read`, `append`, `seal`,
        /// `lock`, ...).
        op: &'static str,
        /// Path involved.
        path: String,
        /// OS error text (or the injected-fault label).
        msg: String,
    },
    /// An entry or segment failed validation (checksum mismatch, torn
    /// tail, undecodable payload) and was quarantined to the `corrupt/`
    /// sidecar; the keys involved fall through to recomputation.
    Corrupt {
        /// Quarantined file (segment or sidecar).
        path: String,
        /// What failed to validate.
        detail: String,
    },
    /// Another live process holds the store lock; this session runs
    /// in-memory-only rather than risking interleaved journal writes.
    Locked {
        /// The lock file path.
        path: String,
        /// PID recorded in the lock file.
        pid: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, msg } => {
                write!(
                    f,
                    "store {op} failed on {path}: {msg}; continuing without persistence"
                )
            }
            StoreError::Corrupt { path, detail } => {
                write!(f, "store entry quarantined ({path}): {detail}; recomputing")
            }
            StoreError::Locked { path, pid } => {
                write!(
                    f,
                    "store locked by pid {pid} ({path}); running in-memory only"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = AnalysisError::BudgetExhausted {
            proc: "main".into(),
            steps: 42,
        };
        assert_eq!(
            e.to_string(),
            "work budget exhausted in 'main' after 42 steps"
        );
        let p: AnalysisError = ParseError {
            msg: "boom".into(),
            line: 3,
            col: 7,
        }
        .into();
        assert!(p.to_string().contains("3:7"));
        assert!(AnalysisError::Internal("x".into())
            .to_string()
            .contains("x"));
        assert!(AnalysisError::MalformedIr("y".into())
            .to_string()
            .contains("y"));
    }

    #[test]
    fn store_error_display_names_degradation() {
        let io = StoreError::Io {
            op: "append",
            path: "/tmp/s".into(),
            msg: "disk full".into(),
        };
        assert!(io.to_string().contains("continuing without persistence"));
        let c = StoreError::Corrupt {
            path: "corrupt/q-1.bin".into(),
            detail: "checksum mismatch".into(),
        };
        assert!(c.to_string().contains("recomputing"));
        let l = StoreError::Locked {
            path: "/tmp/s/lock".into(),
            pid: 123,
        };
        assert!(l.to_string().contains("in-memory only"));
    }
}
