//! A metrics registry: named counters and log₂-bucketed latency
//! histograms, snapshotted to JSON per run.
//!
//! The registry is opt-in: an [`crate::AnalysisSession`] built with
//! [`crate::AnalysisSession::with_metrics`] records a latency sample per
//! memoized lattice query (one `Instant` pair per call) and folds its
//! final [`crate::StatsSnapshot`] into counters on
//! [`crate::AnalysisSession::publish_metrics`]. Without a registry the
//! session pays only an `Option` check per query.
//!
//! ## Determinism
//!
//! Counter *names* and JSON field order are deterministic (`BTreeMap`).
//! Counter *values* split into two classes: per-kind query totals
//! (`query.<kind>.total`), `budget.steps`, interner sizes, and peak
//! table entries are bit-identical for any `--jobs`; the hit/miss split
//! (`memo.<kind>.hits`/`.misses`) and `fm.projections` are not, because
//! two workers may benignly race to compute the same memo entry (both
//! count a miss). Latency histograms are inherently timing-dependent.
//! Tests that assert cross-jobs determinism must compare only the first
//! class — [`MetricsRegistry::deterministic_counters`] selects it.

use padfa_omega::sync::lock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The memoized lattice query kinds instrumented by the session.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueryKind {
    SysEmpty = 0,
    Subset = 1,
    Subtract = 2,
    Intersect = 3,
    Union = 4,
    Project = 5,
    Implies = 6,
}

impl QueryKind {
    pub const ALL: [QueryKind; 7] = [
        QueryKind::SysEmpty,
        QueryKind::Subset,
        QueryKind::Subtract,
        QueryKind::Intersect,
        QueryKind::Union,
        QueryKind::Project,
        QueryKind::Implies,
    ];

    pub fn name(self) -> &'static str {
        match self {
            QueryKind::SysEmpty => "sys_empty",
            QueryKind::Subset => "subset",
            QueryKind::Subtract => "subtract",
            QueryKind::Intersect => "intersect",
            QueryKind::Union => "union",
            QueryKind::Project => "project",
            QueryKind::Implies => "implies",
        }
    }
}

/// A monotone (or last-write-wins via [`Counter::set`]) atomic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two histogram buckets.
pub const BUCKETS: usize = 64;

/// A latency histogram over power-of-two nanosecond buckets: bucket `k`
/// holds samples in `[2^(k-1), 2^k)` (bucket 0 holds 0 ns).
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    pub fn record_ns(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
        let idx = (64 - ns.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum_ns(&self) -> u64 {
        self.sum_ns.load(Ordering::Relaxed)
    }

    pub fn max_ns(&self) -> u64 {
        self.max_ns.load(Ordering::Relaxed)
    }

    /// Per-bucket sample counts, in bucket order (see [`BUCKETS`]).
    /// The basis for cumulative Prometheus `_bucket{le=...}` series.
    pub fn buckets(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Inclusive upper bound (ns) of bucket `idx`: 0 for bucket 0,
    /// `2^idx - 1` otherwise. The last bucket is open-ended — render
    /// it as `+Inf`.
    pub const fn bucket_bound_ns(idx: usize) -> u64 {
        if idx == 0 {
            0
        } else if idx >= BUCKETS - 1 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in 0..=1); 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if idx == 0 {
                    0
                } else {
                    (1u64 << idx.min(63)) - 1
                };
            }
        }
        self.max_ns()
    }
}

/// A named registry of counters and histograms. Shareable across
/// threads; handles are `Arc`s so hot paths never re-hash names.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    pub fn new() -> Arc<MetricsRegistry> {
        Arc::new(MetricsRegistry::default())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = lock(&self.counters);
        if let Some(c) = m.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        m.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = lock(&self.histograms);
        if let Some(h) = m.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::default());
        m.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// All histograms, by name. Handles are shared, so a caller can
    /// render summaries (count/sum/quantiles) without holding the
    /// registry lock.
    pub fn histograms_snapshot(&self) -> BTreeMap<String, Arc<Histogram>> {
        lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// All counters, by name.
    pub fn counters_snapshot(&self) -> BTreeMap<String, u64> {
        lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// The jobs-deterministic counter subset: per-kind query totals and
    /// structural sizes, excluding the racy hit/miss split,
    /// `fm.projections`, `limit.overflows` (both only advance on memo
    /// misses, which race benignly), every `store.*` counter (those
    /// depend on on-disk state from *prior* runs — a warm cache shifts
    /// hits/misses/puts without changing any analysis result — so they
    /// can never be part of a cross-jobs determinism check), every
    /// `tier.*` counter (which of two equal systems wins the intern
    /// race decides whether its dense cache answers, so the dense /
    /// general attribution — never the answer — varies with jobs), and
    /// anything timing-derived (see module docs).
    pub fn deterministic_counters(&self) -> BTreeMap<String, u64> {
        self.counters_snapshot()
            .into_iter()
            .filter(|(k, _)| {
                !k.ends_with(".hits")
                    && !k.ends_with(".misses")
                    && !k.starts_with("store.")
                    && !k.starts_with("tier.")
                    && k != "fm.projections"
                    && k != "limit.overflows"
            })
            .collect()
    }

    /// Serialize every counter and histogram to one JSON object.
    pub fn snapshot_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let counters = self.counters_snapshot();
        let mut first = true;
        for (k, v) in &counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{k}\":{v}"));
        }
        out.push_str("},\"histograms\":{");
        let hists = lock(&self.histograms);
        let mut first = true;
        for (k, h) in hists.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{k}\":{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{}}}",
                h.count(),
                h.sum_ns(),
                h.max_ns(),
                h.quantile_ns(0.50),
                h.quantile_ns(0.90),
                h.quantile_ns(0.99),
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_set() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("a.b");
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.set(2);
        assert_eq!(reg.counter("a.b").get(), 2);
        assert_eq!(reg.counters_snapshot().get("a.b"), Some(&2));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for ns in [1u64, 2, 3, 100, 1000] {
            h.record_ns(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum_ns(), 1106);
        assert_eq!(h.max_ns(), 1000);
        // p50 falls in the bucket holding 3 (bucket [2,4) -> bound 3).
        assert_eq!(h.quantile_ns(0.5), 3);
        assert!(h.quantile_ns(0.99) >= 1000);
        assert_eq!(Histogram::default().quantile_ns(0.5), 0);
    }

    #[test]
    fn deterministic_subset_filters_racy_names() {
        let reg = MetricsRegistry::new();
        reg.counter("memo.subtract.hits").set(5);
        reg.counter("memo.subtract.misses").set(2);
        reg.counter("query.subtract.total").set(7);
        reg.counter("fm.projections").set(3);
        reg.counter("budget.steps").set(11);
        reg.counter("store.puts").set(4);
        reg.counter("store.quarantined").set(1);
        let det = reg.deterministic_counters();
        assert_eq!(det.len(), 2);
        assert_eq!(det.get("query.subtract.total"), Some(&7));
        assert_eq!(det.get("budget.steps"), Some(&11));
    }

    #[test]
    fn snapshot_json_is_well_formed_and_sorted() {
        let reg = MetricsRegistry::new();
        reg.counter("b").set(2);
        reg.counter("a").set(1);
        reg.histogram("lat.x").record_ns(5);
        let j = reg.snapshot_json();
        assert!(j.starts_with("{\"counters\":{\"a\":1,\"b\":2}"));
        assert!(j.contains("\"lat.x\":{\"count\":1"));
        assert!(j.ends_with("}}"));
    }
}
