//! Data-flow summaries of program regions and their composition rules.

use crate::component::PredComponent;
use crate::session::AnalysisSession;
use padfa_omega::Var;
use padfa_pred::Pred;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Per-array summary of one program region.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ArraySummary {
    /// Must-write regions (under-approximate).
    pub w: PredComponent,
    /// May-write regions (over-approximate).
    pub mw: PredComponent,
    /// May-read regions.
    pub r: PredComponent,
    /// Upward-exposed may-read regions.
    pub e: PredComponent,
}

impl ArraySummary {
    pub fn is_empty(&self) -> bool {
        self.w.is_empty() && self.mw.is_empty() && self.r.is_empty() && self.e.is_empty()
    }
}

/// Per-scalar summary. Scalars get the classical (unpredicated)
/// treatment; the paper's contribution concerns array values.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ScalarSummary {
    /// Definitely assigned in the region.
    pub must_write: bool,
    /// Possibly assigned.
    pub may_write: bool,
    /// Possibly read before any definite assignment in the region.
    pub exposed_read: bool,
}

/// Summary of one program region (basic block, if, loop body, loop,
/// call, or procedure body).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Summary {
    pub arrays: BTreeMap<Var, ArraySummary>,
    pub scalars: BTreeMap<Var, ScalarSummary>,
    /// Scalars possibly modified in the region (predicate stability).
    pub scalar_writes: BTreeSet<Var>,
    /// Region performs read I/O (disqualifies enclosing loops).
    pub has_io: bool,
    /// Region contains an internal loop exit.
    pub has_exit: bool,
    /// The summary was replaced by a budget-degraded conservative
    /// summary (or composes one): sound but maximally imprecise.
    pub degraded: bool,
}

impl Summary {
    pub fn empty() -> Summary {
        Summary::default()
    }

    pub fn array_mut(&mut self, a: Var) -> &mut ArraySummary {
        self.arrays.entry(a).or_default()
    }

    pub fn scalar_mut(&mut self, s: Var) -> &mut ScalarSummary {
        self.scalars.entry(s).or_default()
    }

    /// Record a scalar read at the start of this (elementary) summary.
    pub fn read_scalar(&mut self, s: Var) {
        let sc = self.scalar_mut(s);
        if !sc.must_write {
            sc.exposed_read = true;
        }
    }

    /// Record a definite scalar write.
    pub fn write_scalar(&mut self, s: Var) {
        let sc = self.scalar_mut(s);
        sc.must_write = true;
        sc.may_write = true;
        self.scalar_writes.insert(s);
    }

    /// Sequential composition `self ; next`.
    ///
    /// * `R = R1 ∪ R2`
    /// * `E = E1 ∪ PredSubtract(E2, W1)`
    /// * `W = W1 ∪ W2`, `MW = MW1 ∪ MW2`
    ///
    /// Predicates in `next` refer to program state at its entry; pieces
    /// whose predicate reads a scalar `self` may modify are degraded
    /// (weakened to `True` in may components, dropped from must
    /// components).
    pub fn seq(&self, next: &Summary, sess: &AnalysisSession) -> Summary {
        let opts = &sess.opts;
        let mut out = Summary::empty();
        out.has_io = self.has_io || next.has_io;
        out.has_exit = self.has_exit || next.has_exit;
        out.degraded = self.degraded || next.degraded;
        out.scalar_writes = self
            .scalar_writes
            .union(&next.scalar_writes)
            .copied()
            .collect();

        let writes = &self.scalar_writes;
        let unstable = |v: Var| writes.contains(&v);
        let preds = opts.predicates_enabled();

        let keys: BTreeSet<Var> = self
            .arrays
            .keys()
            .chain(next.arrays.keys())
            .copied()
            .collect();
        for a in keys {
            let empty = ArraySummary::default();
            let s1 = self.arrays.get(&a).unwrap_or(&empty);
            let s2 = next.arrays.get(&a).unwrap_or(&empty);

            let w2 = s2.w.degrade_unstable(&unstable, false);
            let mw2 = s2.mw.degrade_unstable(&unstable, true);
            let r2 = s2.r.degrade_unstable(&unstable, true);
            let e2 = s2.e.degrade_unstable(&unstable, true);

            let mut fired = false;
            let e2_minus_w1 = e2.pred_subtract(&s1.w, preds, None, sess, &mut fired);

            let mut acc = ArraySummary {
                w: s1.w.union_in(&w2, sess),
                mw: s1.mw.union_in(&mw2, sess),
                r: s1.r.union_in(&r2, sess),
                e: s1.e.union_in(&e2_minus_w1, sess),
            };
            acc.w.normalize(opts.max_pieces, false, sess);
            acc.mw.normalize(opts.max_pieces, true, sess);
            acc.r.normalize(opts.max_pieces, true, sess);
            acc.e.normalize(opts.max_pieces, true, sess);
            out.arrays.insert(a, acc);
        }

        let skeys: BTreeSet<Var> = self
            .scalars
            .keys()
            .chain(next.scalars.keys())
            .copied()
            .collect();
        for s in skeys {
            let a = self.scalars.get(&s).copied().unwrap_or_default();
            let b = next.scalars.get(&s).copied().unwrap_or_default();
            out.scalars.insert(
                s,
                ScalarSummary {
                    must_write: a.must_write || b.must_write,
                    may_write: a.may_write || b.may_write,
                    exposed_read: a.exposed_read || (b.exposed_read && !a.must_write),
                },
            );
        }
        out
    }

    /// Merge the two branches of `if (cond)`.
    ///
    /// With predicates enabled each branch's pieces are guarded by the
    /// branch condition (so a write under `cond` stays a *guarded
    /// must-write*). The unpredicated baseline must intersect must-writes
    /// and union everything else — precisely the precision loss the paper
    /// addresses.
    pub fn if_merge(
        cond_pred: &Pred,
        then_s: &Summary,
        else_s: &Summary,
        sess: &AnalysisSession,
    ) -> Summary {
        let opts = &sess.opts;
        let mut out = Summary::empty();
        out.has_io = then_s.has_io || else_s.has_io;
        out.has_exit = then_s.has_exit || else_s.has_exit;
        out.degraded = then_s.degraded || else_s.degraded;
        out.scalar_writes = then_s
            .scalar_writes
            .union(&else_s.scalar_writes)
            .copied()
            .collect();

        let keys: BTreeSet<Var> = then_s
            .arrays
            .keys()
            .chain(else_s.arrays.keys())
            .copied()
            .collect();
        let neg = cond_pred.negate();
        for a in keys {
            let empty = ArraySummary::default();
            let t = then_s.arrays.get(&a).unwrap_or(&empty);
            let e = else_s.arrays.get(&a).unwrap_or(&empty);
            let mut acc = if opts.predicates_enabled() {
                ArraySummary {
                    w: t.w.guard(cond_pred).union_in(&e.w.guard(&neg), sess),
                    mw: t.mw.guard(cond_pred).union_in(&e.mw.guard(&neg), sess),
                    r: t.r.guard(cond_pred).union_in(&e.r.guard(&neg), sess),
                    e: t.e.guard(cond_pred).union_in(&e.e.guard(&neg), sess),
                }
            } else {
                // Base SUIF: W must hold on both paths.
                let w = intersect_must(&t.w, &e.w, sess);
                ArraySummary {
                    w,
                    mw: t.mw.union_in(&e.mw, sess),
                    r: t.r.union_in(&e.r, sess),
                    e: t.e.union_in(&e.e, sess),
                }
            };
            acc.w.normalize(opts.max_pieces, false, sess);
            acc.mw.normalize(opts.max_pieces, true, sess);
            acc.r.normalize(opts.max_pieces, true, sess);
            acc.e.normalize(opts.max_pieces, true, sess);
            out.arrays.insert(a, acc);
        }

        let skeys: BTreeSet<Var> = then_s
            .scalars
            .keys()
            .chain(else_s.scalars.keys())
            .copied()
            .collect();
        for s in skeys {
            let a = then_s.scalars.get(&s).copied().unwrap_or_default();
            let b = else_s.scalars.get(&s).copied().unwrap_or_default();
            out.scalars.insert(
                s,
                ScalarSummary {
                    must_write: a.must_write && b.must_write,
                    may_write: a.may_write || b.may_write,
                    exposed_read: a.exposed_read || b.exposed_read,
                },
            );
        }
        out
    }
}

/// Unpredicated must-write intersection (both branches definitely write
/// the intersection of their must regions).
fn intersect_must(a: &PredComponent, b: &PredComponent, sess: &AnalysisSession) -> PredComponent {
    let ra = a.must_region(&Pred::True, sess);
    let rb = b.must_region(&Pred::True, sess);
    let inter = sess.intersect(&ra, &rb);
    if inter.is_empty_union() || !inter.is_exact() {
        PredComponent::empty()
    } else {
        PredComponent::unconditional(inter)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.degraded {
            writeln!(f, "(degraded: budget-exhausted conservative summary)")?;
        }
        for (a, s) in &self.arrays {
            writeln!(f, "{a}: W={} MW={} R={} E={}", s.w, s.mw, s.r, s.e)?;
        }
        for (v, s) in &self.scalars {
            writeln!(
                f,
                "{v}: must={} may={} exposed={}",
                s.must_write, s.may_write, s.exposed_read
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::PredComponent;
    use crate::options::Options;
    use padfa_omega::{Constraint, Disjunction, LinExpr, System};

    fn v(n: &str) -> Var {
        Var::new(n)
    }

    fn psess() -> AnalysisSession {
        AnalysisSession::new(Options::predicated())
    }

    fn bsess() -> AnalysisSession {
        AnalysisSession::new(Options::base())
    }

    fn interval(var: &str, lo: i64, hi: i64) -> Disjunction {
        Disjunction::from_system(System::from_constraints([
            Constraint::geq(LinExpr::var(v(var)), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(v(var)), LinExpr::constant(hi)),
        ]))
    }

    fn pred(src: &str) -> Pred {
        Pred::from_bool(&padfa_ir::parse::parse_bool_expr(src).unwrap())
    }

    fn writes(a: &str, lo: i64, hi: i64) -> Summary {
        let mut s = Summary::empty();
        let arr = s.array_mut(v(a));
        let r = interval("d", lo, hi);
        arr.w = PredComponent::unconditional(r.clone());
        arr.mw = PredComponent::unconditional(r);
        s
    }

    fn reads(a: &str, lo: i64, hi: i64) -> Summary {
        let mut s = Summary::empty();
        let arr = s.array_mut(v(a));
        let r = interval("d", lo, hi);
        arr.r = PredComponent::unconditional(r.clone());
        arr.e = PredComponent::unconditional(r);
        s
    }

    #[test]
    fn seq_kills_covered_reads() {
        let sess = psess();
        // write a[1..10]; read a[1..10]: nothing exposed.
        let s = writes("a", 1, 10).seq(&reads("a", 1, 10), &sess);
        let e = &s.arrays[&v("a")].e;
        assert!(e.is_region_empty(&sess));
        // Reads beyond the write stay exposed.
        let s2 = writes("a", 1, 5).seq(&reads("a", 1, 10), &sess);
        let e2 = s2.arrays[&v("a")].e.may_region(&sess);
        assert_eq!(e2.contains(&|_| Some(7)), Some(true));
        assert_eq!(e2.contains(&|_| Some(3)), Some(false));
    }

    #[test]
    fn seq_read_then_write_is_exposed() {
        let sess = psess();
        let s = reads("a", 1, 10).seq(&writes("a", 1, 10), &sess);
        let e = s.arrays[&v("a")].e.may_region(&sess);
        assert_eq!(e.contains(&|_| Some(5)), Some(true));
    }

    #[test]
    fn if_merge_predicated_keeps_guarded_must_write() {
        let t = writes("a", 1, 10);
        let e = Summary::empty();
        let sess = psess();
        let m = Summary::if_merge(&pred("x > 5"), &t, &e, &sess);
        let w = &m.arrays[&v("a")].w;
        assert_eq!(w.pieces.len(), 1);
        assert_eq!(w.pieces[0].pred, pred("x > 5"));
        // Must region under assumption x > 5 is the full write.
        let must = w.must_region(&pred("x > 5"), &sess);
        assert_eq!(must.contains(&|_| Some(5)), Some(true));
        // Unconditional must region is empty.
        assert!(w.must_region(&Pred::True, &sess).is_empty_union());
    }

    #[test]
    fn if_merge_base_intersects_must_writes() {
        let t = writes("a", 1, 10);
        let e = writes("a", 5, 20);
        let sess = bsess();
        let m = Summary::if_merge(&pred("x > 5"), &t, &e, &sess);
        let w = m.arrays[&v("a")].w.must_region(&Pred::True, &sess);
        assert_eq!(w.contains(&|_| Some(7)), Some(true));
        assert_eq!(w.contains(&|_| Some(2)), Some(false), "only then-branch");
        assert_eq!(w.contains(&|_| Some(15)), Some(false), "only else-branch");
        // One-sided write: must is empty in base.
        let m2 = Summary::if_merge(&pred("x > 5"), &t, &Summary::empty(), &sess);
        assert!(m2.arrays[&v("a")]
            .w
            .must_region(&Pred::True, &sess)
            .is_empty_union());
    }

    #[test]
    fn guarded_write_kills_guarded_read_in_seq() {
        // if (x>5) write a[1..10]; then if (x>5) read a[1..10]:
        // predicated analysis proves nothing is exposed (Figure 1(a)).
        let sess = psess();
        let w = Summary::if_merge(
            &pred("x > 5"),
            &writes("a", 1, 10),
            &Summary::empty(),
            &sess,
        );
        let r = Summary::if_merge(&pred("x > 5"), &reads("a", 1, 10), &Summary::empty(), &sess);
        let s = w.seq(&r, &sess);
        assert!(s.arrays[&v("a")].e.is_region_empty(&sess));
        // Base analysis leaves the read exposed.
        let sess_b = bsess();
        let wb = Summary::if_merge(
            &pred("x > 5"),
            &writes("a", 1, 10),
            &Summary::empty(),
            &sess_b,
        );
        let rb = Summary::if_merge(
            &pred("x > 5"),
            &reads("a", 1, 10),
            &Summary::empty(),
            &sess_b,
        );
        let sb = wb.seq(&rb, &sess_b);
        assert!(!sb.arrays[&v("a")].e.is_region_empty(&sess_b));
    }

    #[test]
    fn seq_degrades_predicates_on_modified_scalars() {
        // S1 writes scalar x; S2's pieces guarded by x > 5 must degrade.
        let mut s1 = Summary::empty();
        s1.write_scalar(v("x"));
        let sess = psess();
        let s2 = Summary::if_merge(
            &pred("x > 5"),
            &writes("a", 1, 10),
            &Summary::empty(),
            &sess,
        );
        let s = s1.seq(&s2, &sess);
        let arr = &s.arrays[&v("a")];
        // Must-write piece dropped entirely.
        assert!(arr.w.is_empty());
        // May-write piece degraded to unconditional.
        assert_eq!(arr.mw.pieces.len(), 1);
        assert!(arr.mw.pieces[0].pred.is_true());
    }

    #[test]
    fn scalar_composition() {
        let mut s1 = Summary::empty();
        s1.write_scalar(v("t"));
        let mut s2 = Summary::empty();
        s2.read_scalar(v("t"));
        let sess = psess();
        // write; read => not exposed.
        let a = s1.seq(&s2, &sess);
        assert!(!a.scalars[&v("t")].exposed_read);
        // read; write => exposed.
        let b = s2.seq(&s1, &sess);
        assert!(b.scalars[&v("t")].exposed_read);
    }

    #[test]
    fn if_merge_scalars() {
        let mut t = Summary::empty();
        t.write_scalar(v("t"));
        let e = Summary::empty();
        let sess = psess();
        let m = Summary::if_merge(&pred("x > 0"), &t, &e, &sess);
        let sc = m.scalars[&v("t")];
        assert!(!sc.must_write, "one-sided write is not a must-write");
        assert!(sc.may_write);
    }
}
