//! Cost-model-driven task scheduling for the parallel driver.
//!
//! The analysis has four fan-out sites (call-graph procedures,
//! statement blocks, per-array loop summarization, per-array dependence
//! tests). Fanning out blindly loses on most inputs: 27 of the 30
//! corpus programs have microsecond-scale tasks at the inner sites, and
//! a `std::thread::scope` spawn costs tens of microseconds — so the
//! blind fan-out of earlier revisions bought 1.0–1.1× at `--jobs 4`
//! where the work-split promised far more.
//!
//! This module makes every spawn decision explicit and cost-driven:
//!
//! * a **static cost model** ([`proc_cost`], [`block_cost`],
//!   [`summarize_cost`], [`deptest_cost`]) estimates each candidate
//!   task's work in abstract *lattice-op units* from the IR (loops,
//!   statements, array accesses) or from the summary shapes already in
//!   hand (pieces × interned systems per predicated component);
//! * a session-wide [`Scheduler`] compares the estimate against a
//!   tunable granularity threshold (`--spawn-threshold`): at or above
//!   it the site fans out through [`crate::pool::par_map`], below it
//!   the work runs inline in the caller and never pays spawn or lock
//!   overhead;
//! * the procedure site additionally schedules over the **SCC-DAG** of
//!   the call graph ([`run_dag`]): instead of barrier-synchronized
//!   topological levels, every procedure becomes a DAG node gated only
//!   by its *own* callees, and ready nodes are dispatched to
//!   self-scheduling worker lanes drawn from the session's
//!   [`WorkerTokens`]. A slow procedure no longer stalls unrelated
//!   procedures that merely share its level.
//!
//! ## Determinism
//!
//! The spawn/inline decision is a pure function of `(estimate,
//! threshold)` — never of `--jobs`, token availability, queue depth, or
//! timing — so the decision stream (and the [`EventKind::Sched`] flight
//! events it emits) is identical at any worker count. The threshold
//! changes only *where* work executes, never its result: every gated
//! site merges slot-per-item output in input order (the
//! [`crate::pool`] contract), and the DAG executor publishes each
//! procedure's summary before releasing its dependents, which is
//! exactly the data order the level-barrier driver guaranteed. The
//! ledger is therefore byte-identical at any `--jobs` and any
//! `--spawn-threshold`.

use crate::component::PredComponent;
use crate::flight::{self, EventKind};
use crate::pool::WorkerTokens;
use crate::summary::ArraySummary;
use crate::trace;
use padfa_ir::ast::{Block, Procedure, Stmt};
use padfa_omega::limit_stats;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Default granularity threshold, in cost-model units, at or above
/// which a task is worth spawning. Calibrated against BENCH: one unit
/// corresponds to roughly a microsecond of summarization work on the
/// reference host, and a scoped thread spawn plus its share of merge
/// overhead costs a few tens of microseconds, so fan-outs estimated
/// below ~100 units lose more to scheduling than they can win back.
pub const DEFAULT_SPAWN_THRESHOLD: u64 = 96;

/// The four fan-out sites the scheduler arbitrates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Site {
    /// Whole-procedure summarization over the call-graph SCC-DAG.
    Proc = 0,
    /// Per-statement block summaries inside one procedure.
    Block = 1,
    /// Per-array subtraction/projection during loop summarization.
    Array = 2,
    /// Per-array dependence tests.
    DepTest = 3,
}

impl Site {
    pub const ALL: [Site; 4] = [Site::Proc, Site::Block, Site::Array, Site::DepTest];

    pub fn name(self) -> &'static str {
        match self {
            Site::Proc => "proc",
            Site::Block => "block",
            Site::Array => "array",
            Site::DepTest => "deptest",
        }
    }
}

/// Flight labels are static so a disabled recorder costs nothing.
fn decision_label(spawn: bool, site: Site) -> &'static str {
    match (spawn, site) {
        (true, Site::Proc) => "spawn:proc",
        (true, Site::Block) => "spawn:block",
        (true, Site::Array) => "spawn:array",
        (true, Site::DepTest) => "spawn:deptest",
        (false, Site::Proc) => "inline:proc",
        (false, Site::Block) => "inline:block",
        (false, Site::Array) => "inline:array",
        (false, Site::DepTest) => "inline:deptest",
    }
}

// ---------------------------------------------------------------------
// Static cost model
// ---------------------------------------------------------------------

/// Array accesses mentioned by an expression (each costs one `R` and
/// one `E` union when summarized).
fn expr_accesses(e: &padfa_ir::ast::Expr) -> u64 {
    let mut n = 0u64;
    e.for_each_access(&mut |_, _| n += 1);
    n
}

/// Estimated summarization cost of one statement, in cost-model units.
/// Loops dominate: summarizing one runs per-array projection and
/// subtraction chains over the whole body summary, so the body cost is
/// multiplied, not added.
pub(crate) fn stmt_cost(s: &Stmt) -> u64 {
    match s {
        Stmt::Assign { lhs, rhs } => {
            let lhs_cost = match lhs {
                padfa_ir::LValue::Scalar(_) => 0,
                padfa_ir::LValue::Elem(_, subs) => {
                    2 + subs.iter().map(expr_accesses).sum::<u64>() * 2
                }
            };
            1 + lhs_cost + expr_accesses(rhs) * 2
        }
        Stmt::If {
            then_blk, else_blk, ..
        } => 2 + block_cost(then_blk) + block_cost(else_blk),
        Stmt::For(l) => 8 + 3 * block_cost(&l.body),
        Stmt::Call { .. } => 6,
        Stmt::Read(_) | Stmt::ExitWhen(_) => 1,
        Stmt::Print(e) => 1 + expr_accesses(e) * 2,
    }
}

/// Estimated summarization cost of a straight-line block.
pub(crate) fn block_cost(b: &Block) -> u64 {
    b.stmts.iter().map(stmt_cost).sum()
}

/// Estimated summarization cost of a whole procedure (the DAG node
/// weight at the [`Site::Proc`] site).
pub(crate) fn proc_cost(p: &Procedure) -> u64 {
    2 + block_cost(&p.body)
}

/// Weight of one predicated component: pieces × (1 + interned systems
/// per piece). This is the operand size every lattice operation over
/// the component walks.
fn component_weight(c: &PredComponent) -> u64 {
    c.pieces
        .iter()
        .map(|p| 1 + p.region.systems().len() as u64)
        .sum()
}

/// Estimated cost of summarizing one array out of a loop body: four
/// context-intersection + projection chains (one per component) plus
/// the pairwise `E − W_prev` predicated subtraction.
pub(crate) fn summarize_cost(s: &ArraySummary) -> u64 {
    let w = component_weight(&s.w);
    let mw = component_weight(&s.mw);
    let r = component_weight(&s.r);
    let e = component_weight(&s.e);
    2 * (w + mw + r + e) + e * w
}

/// Estimated cost of dependence-testing one array: may-writes are
/// tested pairwise against may-writes, reads, and exposed reads.
pub(crate) fn deptest_cost(s: &ArraySummary) -> u64 {
    let w = component_weight(&s.w);
    let mw = component_weight(&s.mw);
    let r = component_weight(&s.r);
    let e = component_weight(&s.e);
    2 + w + mw * (mw + r + e)
}

// ---------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------

/// Per-site spawn/inline decisions of one session, plus the data for
/// the estimate-vs-actual diagnostic. Snapshot via
/// [`Scheduler::snapshot`].
pub(crate) struct Scheduler {
    threshold: u64,
    spawned: [AtomicU64; 4],
    inlined: [AtomicU64; 4],
    /// `(estimate, elapsed ns)` samples from timed fan-out regions,
    /// capped so a pathological session cannot grow without bound.
    samples: Mutex<Vec<(u64, u64)>>,
}

/// Most samples any session keeps for the correlation diagnostic.
const MAX_SAMPLES: usize = 4096;

impl Scheduler {
    pub(crate) fn new(threshold: u64) -> Scheduler {
        Scheduler {
            threshold,
            spawned: std::array::from_fn(|_| AtomicU64::new(0)),
            inlined: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Decide whether a candidate fan-out is worth spawning. Pure in
    /// `(estimate, threshold)` — never consults jobs, tokens, or any
    /// runtime state — so the decision stream and the `Sched` flight
    /// events are identical at any worker count. Call only when a real
    /// choice exists (≥ 2 items and the site's preconditions hold), so
    /// the event multiset stays meaningful.
    pub(crate) fn decide(&self, site: Site, estimate: u64) -> bool {
        let spawn = estimate >= self.threshold;
        let bucket = if spawn { &self.spawned } else { &self.inlined };
        bucket[site as usize].fetch_add(1, Ordering::Relaxed);
        flight::instant(EventKind::Sched, decision_label(spawn, site), estimate);
        spawn
    }

    /// Record how long an estimated region actually took, feeding the
    /// estimate-vs-actual correlation in [`SchedSnapshot`].
    pub(crate) fn note_actual(&self, estimate: u64, nanos: u64) {
        let mut s = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        if s.len() < MAX_SAMPLES {
            s.push((estimate, nanos));
        }
    }

    /// Decide-and-run for the three intra-procedure sites: fan `f` out
    /// over `items` when the estimate clears the threshold, run inline
    /// otherwise. Results come back in item order either way (the
    /// [`crate::pool::par_map`] contract), so the threshold can never
    /// change the output. The whole region is timed for the
    /// estimate-vs-actual diagnostic.
    pub(crate) fn gated_map<T, R, F>(
        &self,
        tokens: &WorkerTokens,
        site: Site,
        estimate: u64,
        items: &[T],
        f: F,
    ) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let spawn = self.decide(site, estimate);
        let t0 = Instant::now();
        let out = if spawn {
            crate::pool::par_map(tokens, items, f)
        } else {
            items.iter().enumerate().map(|(i, t)| f(i, t)).collect()
        };
        self.note_actual(estimate, t0.elapsed().as_nanos() as u64);
        out
    }

    pub(crate) fn snapshot(&self) -> SchedSnapshot {
        let samples = self.samples.lock().unwrap_or_else(PoisonError::into_inner);
        SchedSnapshot {
            threshold: self.threshold,
            spawned: std::array::from_fn(|i| self.spawned[i].load(Ordering::Relaxed)),
            inlined: std::array::from_fn(|i| self.inlined[i].load(Ordering::Relaxed)),
            est_corr: pearson(&samples),
        }
    }
}

/// Pearson correlation of `(estimate, nanos)` pairs; `None` below two
/// distinct samples or when either side has zero variance.
fn pearson(samples: &[(u64, u64)]) -> Option<f64> {
    if samples.len() < 2 {
        return None;
    }
    let n = samples.len() as f64;
    let (sx, sy) = samples.iter().fold((0.0, 0.0), |(ax, ay), &(x, y)| {
        (ax + x as f64, ay + y as f64)
    });
    let (mx, my) = (sx / n, sy / n);
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for &(x, y) in samples {
        let (dx, dy) = (x as f64 - mx, y as f64 - my);
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx * vy).sqrt())
}

/// Scheduler counters for [`crate::session::StatsSnapshot`]: spawn and
/// inline decisions per site (indexed by [`Site`] discriminant), the
/// active threshold, and the estimate-vs-actual cost correlation over
/// this session's timed fan-out regions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SchedSnapshot {
    /// The session's `--spawn-threshold` (cost-model units).
    pub threshold: u64,
    /// Spawn decisions per site, indexed like [`Site::ALL`].
    pub spawned: [u64; 4],
    /// Inline decisions per site, indexed like [`Site::ALL`].
    pub inlined: [u64; 4],
    /// Pearson correlation between estimated cost and measured wall
    /// time of the gated regions; `None` with fewer than two samples or
    /// degenerate variance. Timing-derived — not jobs-deterministic, so
    /// it is surfaced here and in BENCH but never as a metrics counter.
    pub est_corr: Option<f64>,
}

impl SchedSnapshot {
    pub fn spawned_total(&self) -> u64 {
        self.spawned.iter().sum()
    }

    pub fn inlined_total(&self) -> u64 {
        self.inlined.iter().sum()
    }

    pub fn decisions(&self) -> u64 {
        self.spawned_total() + self.inlined_total()
    }
}

// ---------------------------------------------------------------------
// SCC-DAG executor
// ---------------------------------------------------------------------

/// Shared executor state: the ready queue and its condition variable,
/// plus the count of not-yet-finished nodes that tells idle lanes when
/// to exit.
struct DagState {
    ready: Mutex<std::collections::VecDeque<usize>>,
    cv: Condvar,
    remaining: AtomicUsize,
}

/// Run `f(node)` for every node of a dependency DAG, returning results
/// indexed by node id.
///
/// `deps[i]` lists the nodes that must finish before `i` starts (the
/// acyclic "strictly lower call-graph level" edges); `order` is any
/// topological order, used both for the sequential path and to seed the
/// ready queue so low-level nodes start first. Ready nodes are claimed
/// by up to `1 + min(workers, …)` self-scheduling lanes: the caller
/// always participates, extra lanes are drawn grab-don't-wait from
/// `tokens` and bounded by `max_spawn` (the number of spawn-worthy
/// nodes, so an all-inline program never pays a thread spawn).
///
/// Determinism: each node's result lands in its own slot, dependents
/// are released only after the node's `f` returns (so data published
/// inside `f` is visible, exactly as the level-barrier driver
/// guaranteed), and a panic in any `f` is re-raised for the lowest node
/// id after all nodes finish — matching sequential first-failure
/// selection. Worker lanes migrate `limit_stats` and flight lattice-op
/// deltas back to the caller like [`crate::pool::par_map`] does.
pub(crate) fn run_dag<R, F>(
    tokens: &WorkerTokens,
    order: &[usize],
    deps: &[Vec<usize>],
    max_spawn: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let n = deps.len();
    debug_assert_eq!(order.len(), n);
    let workers = if n < 2 || max_spawn == 0 {
        0
    } else {
        tokens.grab(max_spawn.min(n - 1))
    };
    if workers == 0 {
        // Sequential: any topological order satisfies every dependency.
        let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for &t in order {
            slots[t] = Some(f(t));
        }
        return unwrap_slots(slots, &f);
    }

    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut pending: Vec<AtomicUsize> = Vec::with_capacity(n);
    for (i, d) in deps.iter().enumerate() {
        pending.push(AtomicUsize::new(d.len()));
        for &j in d {
            dependents[j].push(i);
        }
    }
    let state = DagState {
        ready: Mutex::new(
            order
                .iter()
                .copied()
                .filter(|&i| deps[i].is_empty())
                .collect(),
        ),
        cv: Condvar::new(),
        remaining: AtomicUsize::new(n),
    };
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let panic_slot: Mutex<Option<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(None);

    let lane = |migrate: bool| {
        loop {
            let task = {
                let mut q = state.ready.lock().unwrap_or_else(PoisonError::into_inner);
                loop {
                    if let Some(t) = q.pop_front() {
                        break Some(t);
                    }
                    if state.remaining.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    q = state.cv.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
            };
            let Some(t) = task else { break };
            match catch_unwind(AssertUnwindSafe(|| f(t))) {
                Ok(r) => {
                    *slots[t].lock().unwrap_or_else(PoisonError::into_inner) = Some(r);
                }
                Err(payload) => {
                    let mut p = panic_slot.lock().unwrap_or_else(PoisonError::into_inner);
                    if p.as_ref().is_none_or(|(j, _)| t < *j) {
                        *p = Some((t, payload));
                    }
                }
            }
            // Release dependents only after the node's result (and any
            // data `f` published) is in place; a panicked node still
            // releases them so no lane waits forever.
            for &d in &dependents[t] {
                if pending[d].fetch_sub(1, Ordering::AcqRel) == 1 {
                    let mut q = state.ready.lock().unwrap_or_else(PoisonError::into_inner);
                    q.push_back(d);
                    drop(q);
                    state.cv.notify_one();
                }
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Wake every idle lane under the queue lock: a lane
                // either sees `remaining == 0` before waiting or is
                // already waiting and receives this notification.
                let _q = state.ready.lock().unwrap_or_else(PoisonError::into_inner);
                state.cv.notify_all();
            }
        }
        if migrate {
            trace::flush_lattice_batch();
            (limit_stats::thread_overflows(), flight::take_lattice_ops())
        } else {
            (0, 0)
        }
    };

    let parent_trace = flight::current_trace();
    let (migrated, flight_ops) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _tag = flight::set_trace(parent_trace);
                    lane(true)
                })
            })
            .collect();
        lane(false);
        let mut migrated = 0u64;
        let mut flight_ops = 0u64;
        for h in handles {
            if let Ok((delta, ops)) = h.join() {
                migrated += delta;
                flight_ops += ops;
            }
        }
        (migrated, flight_ops)
    });
    tokens.release(workers);
    limit_stats::adopt_thread_overflows(migrated);
    flight::adopt_lattice_ops(flight_ops);

    if let Some((_, payload)) = panic_slot
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
    {
        resume_unwind(payload);
    }
    let slots = slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
        .collect();
    unwrap_slots(slots, &f)
}

/// Fill any empty slot by recomputing inline — every node is claimed
/// exactly once, so this only covers a lost scaffold join, and keeps
/// the function total without a panic path.
fn unwrap_slots<R>(slots: Vec<Option<R>>, f: &impl Fn(usize) -> R) -> Vec<R> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| f(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_is_pure_in_estimate() {
        let s = Scheduler::new(10);
        assert!(!s.decide(Site::Block, 9));
        assert!(s.decide(Site::Block, 10));
        assert!(s.decide(Site::Proc, u64::MAX));
        let snap = s.snapshot();
        assert_eq!(snap.spawned[Site::Block as usize], 1);
        assert_eq!(snap.inlined[Site::Block as usize], 1);
        assert_eq!(snap.spawned[Site::Proc as usize], 1);
        assert_eq!(snap.decisions(), 3);
    }

    #[test]
    fn threshold_zero_always_spawns_and_max_never_does() {
        let zero = Scheduler::new(0);
        assert!(zero.decide(Site::Array, 0));
        let inf = Scheduler::new(u64::MAX);
        assert!(!inf.decide(Site::Array, u64::MAX - 1));
    }

    #[test]
    fn pearson_tracks_perfect_correlation() {
        let samples: Vec<(u64, u64)> = (1..=10).map(|i| (i, 100 * i)).collect();
        let r = pearson(&samples).expect("correlated");
        assert!((r - 1.0).abs() < 1e-9, "r = {r}");
        assert!(pearson(&[(1, 1)]).is_none());
        assert!(pearson(&[(5, 1), (5, 100)]).is_none(), "zero x-variance");
    }

    #[test]
    fn run_dag_respects_dependencies() {
        // Diamond: 0 -> {1, 2} -> 3, plus an isolated 4.
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![0], vec![1, 2], vec![]];
        let order = [0, 1, 2, 4, 3];
        let seen = Mutex::new(Vec::new());
        let tokens = WorkerTokens::new(4);
        let got = run_dag(&tokens, &order, &deps, deps.len(), |i| {
            seen.lock().unwrap().push(i);
            i * 10
        });
        assert_eq!(got, vec![0, 10, 20, 30, 40]);
        let seen = seen.into_inner().unwrap();
        let pos = |x: usize| seen.iter().position(|&v| v == x).unwrap();
        assert!(pos(0) < pos(1) && pos(0) < pos(2) && pos(1) < pos(3) && pos(2) < pos(3));
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 3, "tokens leaked");
    }

    #[test]
    fn run_dag_inline_when_no_spawn_worthy_nodes() {
        let deps: Vec<Vec<usize>> = vec![vec![], vec![0], vec![1]];
        let order = [0, 1, 2];
        let tokens = WorkerTokens::new(4);
        let got = run_dag(&tokens, &order, &deps, 0, |i| i + 1);
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn run_dag_lowest_node_panic_wins() {
        let deps: Vec<Vec<usize>> = (0..16).map(|_| Vec::new()).collect();
        let order: Vec<usize> = (0..16).collect();
        let tokens = WorkerTokens::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            run_dag(&tokens, &order, &deps, 16, |i| {
                if i == 3 || i == 11 {
                    std::panic::panic_any(format!("dag-boom-{i}"));
                }
                i
            })
        }));
        let payload = caught.expect_err("must propagate panic");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "dag-boom-3");
        assert_eq!(tokens.avail.load(Ordering::Relaxed), 3, "tokens leaked");
    }

    #[test]
    fn gated_map_inline_and_spawned_agree() {
        let tokens = WorkerTokens::new(4);
        let items: Vec<u64> = (0..32).collect();
        let spawn = Scheduler::new(0);
        let inline = Scheduler::new(u64::MAX);
        let a = spawn.gated_map(&tokens, Site::Array, 1, &items, |_, &x| x * 3);
        let b = inline.gated_map(&tokens, Site::Array, 1, &items, |_, &x| x * 3);
        assert_eq!(a, b);
        assert_eq!(spawn.snapshot().spawned_total(), 1);
        assert_eq!(inline.snapshot().inlined_total(), 1);
    }
}
