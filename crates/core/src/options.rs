//! Analysis configuration: variants and feature toggles.

use crate::budget::WorkBudget;
use padfa_omega::Limits;

/// Which analysis the driver runs. The three variants reproduce the
/// paper's comparison axes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Unpredicated SUIF array data-flow analysis: control-flow merges
    /// intersect must-writes and union exposed reads; no predicates
    /// anywhere.
    Base,
    /// Guarded array data-flow analysis in the style of Gu, Li & Lee:
    /// predicates improve compile-time precision but no run-time tests
    /// are emitted and no embedding/extraction is performed.
    Guarded,
    /// Full predicated array data-flow analysis (the paper).
    Predicated,
}

/// Analysis options. The toggles exist for the ablation study; the
/// constructors give the three named configurations.
#[derive(Clone, Debug)]
pub struct Options {
    pub variant: Variant,
    /// Push affine predicates into the linear systems before loop
    /// projection (Figure 1(c) mechanism).
    pub embedding: bool,
    /// Pull symbolic-only constraints out of regions into predicates
    /// (Figure 1(d) / reshape mechanism).
    pub extraction: bool,
    /// Emit `ParallelIf` run-time tests (Figure 1(b,d) mechanism).
    pub runtime_tests: bool,
    /// Maximum guarded pieces kept per component before merging into the
    /// conservative default (the paper keeps optimistic values plus a
    /// default; K bounds analysis cost).
    pub max_pieces: usize,
    /// Maximum run-time test cost (number of atoms) accepted; beyond
    /// this a candidate test is discarded as not "low-cost".
    pub test_cost_budget: u32,
    /// Combinatorial limits for the linear engine.
    pub limits: Limits,
    /// Per-procedure work budget (steps / wall deadline) and the policy
    /// on exhaustion. Unlimited by default.
    pub budget: WorkBudget,
    /// Granularity threshold for the task scheduler
    /// ([`crate::sched`]): a fan-out whose cost estimate falls below
    /// this many cost-model units runs inline instead of spawning.
    /// `0` spawns everything, `u64::MAX` inlines everything; results
    /// are byte-identical at any value.
    pub spawn_threshold: u64,
}

impl Options {
    /// Full predicated analysis.
    pub fn predicated() -> Options {
        Options {
            variant: Variant::Predicated,
            embedding: true,
            extraction: true,
            runtime_tests: true,
            max_pieces: 4,
            test_cost_budget: 16,
            limits: Limits::default(),
            budget: WorkBudget::UNLIMITED,
            spawn_threshold: crate::sched::DEFAULT_SPAWN_THRESHOLD,
        }
    }

    /// Unpredicated baseline (base SUIF).
    pub fn base() -> Options {
        Options {
            variant: Variant::Base,
            embedding: false,
            extraction: false,
            runtime_tests: false,
            max_pieces: 1,
            test_cost_budget: 0,
            limits: Limits::default(),
            budget: WorkBudget::UNLIMITED,
            spawn_threshold: crate::sched::DEFAULT_SPAWN_THRESHOLD,
        }
    }

    /// Compile-time-only guarded analysis (Gu/Li/Lee comparator).
    pub fn guarded() -> Options {
        Options {
            variant: Variant::Guarded,
            embedding: false,
            extraction: false,
            runtime_tests: false,
            max_pieces: 4,
            test_cost_budget: 0,
            limits: Limits::default(),
            budget: WorkBudget::UNLIMITED,
            spawn_threshold: crate::sched::DEFAULT_SPAWN_THRESHOLD,
        }
    }

    /// Replace the work budget (builder style).
    pub fn with_budget(mut self, budget: WorkBudget) -> Options {
        self.budget = budget;
        self
    }

    /// Replace the scheduler granularity threshold (builder style).
    /// Affects only where work executes — never its result — so it is
    /// excluded from the persistent store's options fingerprint.
    pub fn with_spawn_threshold(mut self, threshold: u64) -> Options {
        self.spawn_threshold = threshold;
        self
    }

    /// Whether predicates are tracked at all.
    pub fn predicates_enabled(&self) -> bool {
        self.variant != Variant::Base
    }
}

impl Default for Options {
    fn default() -> Options {
        Options::predicated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_configurations() {
        let p = Options::predicated();
        assert!(p.embedding && p.extraction && p.runtime_tests);
        assert!(p.predicates_enabled());
        let b = Options::base();
        assert!(!b.embedding && !b.extraction && !b.runtime_tests);
        assert!(!b.predicates_enabled());
        let g = Options::guarded();
        assert!(g.predicates_enabled());
        assert!(!g.runtime_tests);
    }
}
