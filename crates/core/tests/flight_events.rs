//! The flight recorder must not perturb — or be perturbed by — the
//! parallel driver: the *set* of structured events a run emits (kinds,
//! begin/end/instant phases, labels, and their counts) is part of the
//! deterministic output surface. Only timing fields (`ts_us`, `dur_us`,
//! `tid`, `seq`) may differ between worker counts.

use std::collections::BTreeMap;

use padfa_core::{analyze_program_session, flight, AnalysisSession, Options};
use padfa_ir::parse::parse_program;

const PROGRAM: &str = "
    proc leaf1(b: array[64], m: int) { for j = 1 to m { b[j] = 0.0; } }
    proc leaf2(b: array[64], m: int) { for j = 1 to m { b[j] = b[j] + 1.0; } }
    proc leaf3(b: array[64], m: int) {
        for j = 1 to m { if (m > 10) { b[j] = 2.0; } }
    }
    proc mid(b: array[64], m: int) { call leaf1(b, m); call leaf2(b, m); }
    proc main(n: int, x: int) {
        array a[64];
        for@one i = 1 to n { call mid(a, i); }
        for@two i = 1 to n { if (x > 0) { call leaf3(a, i); } }
        for@tri i = 1 to n { a[i] = a[i] + 1.0; }
    }";

/// Run the analysis under a fresh trace tag and return this run's
/// events as `(kind, phase, label) -> count`. Tagging lets the test
/// coexist with any other recorder traffic in the process, and the
/// worker pool propagates the tag into its lanes, so parallel runs are
/// fully captured too.
fn event_counts(jobs: usize, trace_label: &str) -> BTreeMap<(String, char, String), usize> {
    let key = flight::trace_key(trace_label);
    let tag = flight::set_trace(key);
    let prog = parse_program(PROGRAM).unwrap();
    let sess = AnalysisSession::new(Options::predicated()).with_jobs(jobs);
    analyze_program_session(&prog, &sess).unwrap();
    drop(tag);
    let mut counts = BTreeMap::new();
    for e in flight::snapshot().iter().filter(|e| e.trace == key) {
        *counts
            .entry((e.kind.name().to_string(), e.phase.code(), e.label.clone()))
            .or_insert(0usize) += 1;
    }
    counts
}

#[test]
fn event_kinds_and_counts_are_identical_across_worker_counts() {
    let baseline = event_counts(1, "flight-determinism-jobs1");
    assert!(
        !baseline.is_empty(),
        "recorder produced no events for a full analysis run"
    );
    // The run must have hit the interesting phases, not just one span.
    for kind in ["driver", "summarize", "loop", "lattice-batch", "sched"] {
        assert!(
            baseline.keys().any(|(k, _, _)| k == kind),
            "no '{kind}' events recorded: {baseline:?}"
        );
    }
    // Scheduler decisions are labelled by verb and site; the 5-proc
    // program always offers a procedure-level choice.
    assert!(
        baseline
            .keys()
            .any(|(k, _, l)| k == "sched" && (l.ends_with(":proc"))),
        "no procedure-level sched decision recorded: {baseline:?}"
    );
    for jobs in [2, 4] {
        let parallel = event_counts(jobs, &format!("flight-determinism-jobs{jobs}"));
        assert_eq!(
            baseline, parallel,
            "flight event multiset diverged between --jobs 1 and --jobs {jobs}"
        );
    }
}
