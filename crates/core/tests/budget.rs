//! Watchdog-budget behavior: sound degradation, strict errors, loop
//! marking, and schedule-independence of budget decisions.

use padfa_core::interproc::degraded_summary;
use padfa_core::{
    analyze_program, analyze_program_session, analyze_program_with_summaries, AnalysisError,
    AnalysisSession, NotCandidateReason, Options, Outcome, WorkBudget,
};
use padfa_ir::parse::parse_program;

/// A two-procedure fixture: the callee has guarded writes and an
/// affine read pattern, the caller parallelizes a loop of calls when
/// the callee summary is exact.
const INTERPROC_SRC: &str = "
proc init(a: array[100], lo: int, hi: int) {
    for i = lo to hi {
        if (lo > 1) { a[i] = 0.0; }
        a[i] = a[i] + 1.0;
    }
}
proc main(n: int, x: int) {
    array a[100];
    array b[100];
    for@outer j = 1 to n {
        b[j] = 2.0;
    }
    call init(a, 1, n);
}
";

/// The degraded summary must over-approximate any exact summary: every
/// exact may component (MW, R, E) is contained in the degraded one,
/// and the degraded must-write component is empty (the only sound
/// under-approximation without doing the work).
#[test]
fn degraded_summary_is_superset_of_exact() {
    let prog = parse_program(INTERPROC_SRC).unwrap();
    let opts = Options::predicated();
    let (_, summaries) = analyze_program_with_summaries(&prog, &opts).unwrap();
    let sess = AnalysisSession::new(opts);
    sess.pre_intern(&prog);

    let init = prog
        .procedures
        .iter()
        .find(|p| p.name.as_str() == "init")
        .unwrap();
    let exact = &summaries["init"];
    let degraded = degraded_summary(init);

    assert!(degraded.degraded, "degraded summary carries its tag");
    assert!(degraded.has_io, "degraded summary disqualifies callers");
    for (var, exact_arr) in &exact.arrays {
        let deg_arr = degraded
            .arrays
            .get(var)
            .unwrap_or_else(|| panic!("degraded summary drops array {var}"));
        // Every degraded may component covers the whole declared
        // extent. Compare point sets against the exact whole-array
        // region (the degraded one is flagged inexact, which makes
        // `subset_of` conservatively refuse the direct comparison).
        let whole = padfa_core::region::whole_array(init, *var);
        for (name, ex, deg) in [
            ("mw", &exact_arr.mw, &deg_arr.mw),
            ("r", &exact_arr.r, &deg_arr.r),
            ("e", &exact_arr.e, &deg_arr.e),
        ] {
            assert!(
                sess.subset_of(&ex.may_region(&sess), &whole),
                "exact {name} of {var} must be contained in the degraded {name}"
            );
            assert!(
                !deg.is_empty(),
                "degraded {name} of {var} must not be empty"
            );
        }
        // Must-direction component only shrinks (to nothing).
        assert!(
            deg_arr.w.is_empty(),
            "degraded summary must not claim must-writes"
        );
    }
}

/// A starved budget degrades instead of failing: the analysis still
/// returns `Ok`, loops of the exhausted procedure are reported
/// sequential with the budget reason, and the report line says so.
#[test]
fn starved_budget_degrades_and_marks_loops() {
    let prog = parse_program(INTERPROC_SRC).unwrap();
    let opts = Options::predicated().with_budget(WorkBudget::steps(1));
    let result = analyze_program(&prog, &opts).unwrap();

    assert!(result.stats.degraded_procs >= 1);
    assert!(result.stats.budget_steps >= 1);
    assert!(!result.loops.is_empty());
    for report in &result.loops {
        assert!(matches!(report.outcome, Outcome::Sequential));
        assert!(matches!(
            report.not_candidate,
            Some(NotCandidateReason::BudgetExhausted)
        ));
        let line = format!("{report}");
        assert!(
            line.contains("not-parallel (budget)"),
            "budget reason missing from report line: {line}"
        );
    }
}

/// The same program under a generous budget parallelizes normally and
/// reports zero degraded procedures.
#[test]
fn generous_budget_is_exact() {
    let prog = parse_program(INTERPROC_SRC).unwrap();
    let opts = Options::predicated().with_budget(WorkBudget::steps(1_000_000));
    let result = analyze_program(&prog, &opts).unwrap();
    assert_eq!(result.stats.degraded_procs, 0);
    assert!(result
        .by_label("outer")
        .unwrap()
        .outcome
        .is_parallelizable());
}

/// `--strict` budgets turn exhaustion into a typed error naming the
/// procedure.
#[test]
fn strict_budget_is_a_typed_error() {
    let prog = parse_program(INTERPROC_SRC).unwrap();
    let opts = Options::predicated().with_budget(WorkBudget::steps(1).strict());
    match analyze_program(&prog, &opts) {
        Err(AnalysisError::BudgetExhausted { proc, steps }) => {
            assert!(
                prog.procedures.iter().any(|p| p.name.as_str() == proc),
                "error names an unknown procedure '{proc}'"
            );
            assert!(steps >= 1);
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

/// Degradation is monotone: every loop parallelized under a starved
/// budget is also parallelized under the unlimited budget. (Losing
/// parallelism is allowed; inventing it is not.)
#[test]
fn starved_parallel_set_is_subset_of_exact() {
    let prog = parse_program(INTERPROC_SRC).unwrap();
    let exact = analyze_program(&prog, &Options::predicated()).unwrap();
    for steps in [1, 5, 20, 100] {
        let opts = Options::predicated().with_budget(WorkBudget::steps(steps));
        let starved = analyze_program(&prog, &opts).unwrap();
        for (ex, st) in exact.loops.iter().zip(starved.loops.iter()) {
            assert_eq!(ex.id, st.id);
            if st.parallelized() {
                assert!(
                    ex.parallelized(),
                    "budget {steps}: loop {:?} parallel under starvation but not exactly",
                    st.id
                );
            }
        }
    }
}

/// Budget decisions are schedule-independent: with a step-count budget
/// (no wall deadline), `--jobs 4` must degrade exactly the same
/// procedures and render byte-identical reports as `--jobs 1`.
#[test]
fn starved_budget_reports_are_jobs_deterministic() {
    // Several same-level procedures so the parallel driver actually
    // fans out.
    let src = "
proc f1(a: array[64], n: int) { for i = 1 to n { a[i] = a[i] + 1.0; } }
proc f2(a: array[64], n: int) { for i = 1 to n { if (n > 3) { a[i] = 0.0; } } }
proc f3(a: array[64], n: int) { for i = 2 to n { a[i] = a[i - 1]; } }
proc main(n: int, x: int) {
    array a[64];
    call f1(a, n);
    call f2(a, n);
    call f3(a, n);
    for@top i = 1 to n { a[i] = 1.0; }
}
";
    let prog = parse_program(src).unwrap();
    for steps in [3, 17, 200] {
        let opts = Options::predicated().with_budget(WorkBudget::steps(steps));
        let render = |jobs: usize| {
            let sess = AnalysisSession::new(opts.clone()).with_jobs(jobs);
            let (result, _) = analyze_program_session(&prog, &sess).unwrap();
            let lines: Vec<String> = result.loops.iter().map(|r| format!("{r}")).collect();
            (lines.join("\n"), result.stats.degraded_procs)
        };
        let (seq_report, seq_degraded) = render(1);
        let (par_report, par_degraded) = render(4);
        assert_eq!(
            seq_report, par_report,
            "budget {steps}: reports differ between --jobs 1 and --jobs 4"
        );
        assert_eq!(seq_degraded, par_degraded);
    }
}
