//! Pin the loop-level data-flow values themselves (not just outcomes):
//! the W/MW/R/E regions computed for canonical programs, via the
//! procedure summaries returned by `analyze_program_with_summaries`.

use padfa_core::region::dim_var;
use padfa_core::{analyze_program_with_summaries, AnalysisSession, Options, Summary};
use padfa_ir::parse::parse_program;
use padfa_omega::{Limits, Var};
use padfa_pred::Pred;

fn sess() -> AnalysisSession {
    AnalysisSession::new(Options::predicated())
}

fn summarize(src: &str) -> Summary {
    let prog = parse_program(src).unwrap();
    let (_, summaries) = analyze_program_with_summaries(&prog, &Options::predicated()).unwrap();
    summaries["main"].clone()
}

/// Membership of an element in a region given symbolic values.
/// Existential variables (stride lattice counters) are handled by
/// constraining the knowns and checking satisfiability.
fn contains(
    region: &padfa_omega::Disjunction,
    array: &str,
    elem: i64,
    sym: &[(&str, i64)],
) -> bool {
    use padfa_omega::{Constraint, LinExpr};
    let d0 = dim_var(Var::new(array), 0);
    let mut pinned = region.constrain(&Constraint::eq(LinExpr::var(d0), LinExpr::constant(elem)));
    for &(name, val) in sym {
        pinned = pinned.constrain(&Constraint::eq(
            LinExpr::var(Var::new(name)),
            LinExpr::constant(val),
        ));
    }
    !pinned.is_empty(Limits::default())
}

#[test]
fn write_loop_must_write_region_is_symbolic_interval() {
    let s = summarize(
        "proc main(n: int) { array a[100];
         for i = 1 to n { a[i] = 1.0; } }",
    );
    let w = s.arrays[&Var::new("a")].w.must_region(&Pred::True, &sess());
    // [1..n]: with n = 7, elements 1 and 7 in, 0 and 8 out.
    assert!(contains(&w, "a", 1, &[("n", 7)]));
    assert!(contains(&w, "a", 7, &[("n", 7)]));
    assert!(!contains(&w, "a", 8, &[("n", 7)]));
    assert!(!contains(&w, "a", 0, &[("n", 7)]));
    // Zero-trip: with n = 0 the region is empty.
    assert!(!contains(&w, "a", 1, &[("n", 0)]));
}

#[test]
fn exposed_reads_subtract_prior_writes() {
    // write [1..m]; read [1..n]: exposed = [m+1..n].
    let s = summarize(
        "proc main(n: int, m: int) { array a[100]; array out[100];
         for i = 1 to m { a[i] = 1.0; }
         for i = 1 to n { out[i] = a[i]; } }",
    );
    let e = s.arrays[&Var::new("a")].e.may_region(&sess());
    let env = [("n", 9), ("m", 5)];
    assert!(!contains(&e, "a", 3, &env), "covered by the write");
    assert!(contains(&e, "a", 6, &env), "beyond the write");
    assert!(contains(&e, "a", 9, &env));
    assert!(!contains(&e, "a", 10, &env), "beyond the read");
}

#[test]
fn guarded_write_appears_as_guarded_must_piece() {
    let s = summarize(
        "proc main(n: int, x: int) { array a[100];
         if (x > 5) {
             for i = 1 to n { a[i] = 1.0; }
         } }",
    );
    let w = &s.arrays[&Var::new("a")].w;
    // Unconditional must region is empty; under x > 5 the interval shows.
    assert!(w.must_region(&Pred::True, &sess()).is_empty_union());
    let guard = Pred::from_bool(&padfa_ir::parse::parse_bool_expr("x > 5").unwrap());
    let under = w.must_region(&guard, &sess());
    assert!(contains(&under, "a", 3, &[("n", 5)]));
}

#[test]
fn downward_loop_covers_same_interval() {
    let up = summarize(
        "proc main(n: int) { array a[100];
         for i = 1 to n { a[i] = 1.0; } }",
    );
    let down = summarize(
        "proc main(n: int) { array a[100];
         for i = n to 1 step -1 { a[i] = 1.0; } }",
    );
    for elem in [1i64, 4, 7] {
        let wu = up.arrays[&Var::new("a")]
            .w
            .must_region(&Pred::True, &sess());
        let wd = down.arrays[&Var::new("a")]
            .w
            .must_region(&Pred::True, &sess());
        assert_eq!(
            contains(&wu, "a", elem, &[("n", 7)]),
            contains(&wd, "a", elem, &[("n", 7)]),
            "element {elem}"
        );
    }
}

#[test]
fn strided_write_region_keeps_lattice() {
    let s = summarize(
        "proc main(n: int) { array a[100];
         for i = 1 to n step 2 { a[i] = 1.0; } }",
    );
    let w = s.arrays[&Var::new("a")].w.must_region(&Pred::True, &sess());
    // Odd elements written, even not.
    assert!(contains(&w, "a", 1, &[("n", 9)]));
    assert!(contains(&w, "a", 9, &[("n", 9)]));
    assert!(
        !contains(&w, "a", 4, &[("n", 9)]),
        "stride-2 lattice must exclude even elements"
    );
}

#[test]
fn call_effects_appear_in_caller_summary() {
    let s = summarize(
        "proc fill(b: array[50], m: int) {
             for j = 1 to m { b[j] = 0.0; }
         }
         proc main(n: int) { array a[50];
             call fill(a, n);
         }",
    );
    let w = s.arrays[&Var::new("a")].w.must_region(&Pred::True, &sess());
    assert!(contains(&w, "a", 1, &[("n", 10)]));
    assert!(contains(&w, "a", 10, &[("n", 10)]));
    assert!(!contains(&w, "a", 11, &[("n", 10)]));
}

#[test]
fn local_arrays_do_not_leak_into_proc_summary() {
    let prog = parse_program(
        "proc helper(n: int) { array tmp[8];
             for j = 1 to n { tmp[1] = tmp[1] + j; }
         }
         proc main(n: int) { call helper(n); }",
    )
    .unwrap();
    let (_, summaries) = analyze_program_with_summaries(&prog, &Options::predicated()).unwrap();
    assert!(
        summaries["main"].arrays.is_empty(),
        "callee-local arrays are invisible to the caller"
    );
}

#[test]
fn read_only_array_has_no_write_components() {
    let s = summarize(
        "proc main(n: int) { array a[64]; array b[64];
         for i = 1 to n { b[i] = a[i] * 2.0; } }",
    );
    let a = &s.arrays[&Var::new("a")];
    assert!(a.w.is_empty());
    assert!(a.mw.is_empty());
    assert!(!a.r.is_empty());
    assert!(!a.e.is_empty());
}
