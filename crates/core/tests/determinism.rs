//! The parallel per-procedure driver must be bit-deterministic: the
//! rendered analysis output may not depend on the worker count or on
//! scheduling. These tests exercise hand-written programs (including
//! recursive call graphs); the full-corpus golden test lives in the
//! suite crate.

use padfa_core::{analyze_program_session, AnalysisSession, Options};
use padfa_ir::parse::parse_program;

/// Render everything observable about one run: every loop report plus
/// every procedure summary, in a canonical order.
fn render(src: &str, opts: &Options, jobs: usize) -> String {
    let prog = parse_program(src).unwrap();
    let sess = AnalysisSession::new(opts.clone()).with_jobs(jobs);
    let (result, summaries) = analyze_program_session(&prog, &sess).unwrap();
    let mut out = String::new();
    for report in &result.loops {
        out.push_str(&format!("{report}\n"));
    }
    let mut names: Vec<&String> = summaries.keys().collect();
    names.sort();
    for name in names {
        out.push_str(&format!("== {name} ==\n{}", summaries[name]));
    }
    out
}

const WIDE_PROGRAM: &str = "
    proc leaf1(b: array[64], m: int) { for j = 1 to m { b[j] = 0.0; } }
    proc leaf2(b: array[64], m: int) { for j = 1 to m { b[j] = b[j] + 1.0; } }
    proc leaf3(b: array[64], m: int) {
        for j = 1 to m { if (m > 10) { b[j] = 2.0; } }
    }
    proc leaf4(b: array[64], m: int) { for j = 2 to m { b[j] = b[j - 1]; } }
    proc mid1(b: array[64], m: int) { call leaf1(b, m); call leaf2(b, m); }
    proc mid2(b: array[64], m: int) { call leaf3(b, m); call leaf4(b, m); }
    proc main(n: int, x: int) {
        array a[64];
        for i = 1 to n { call mid1(a, i); }
        for i = 1 to n { if (x > 0) { call mid2(a, i); } }
    }";

const RECURSIVE_PROGRAM: &str = "
    proc ping(b: array[32], k: int) { b[k] = 1.0; call pong(b, k); }
    proc pong(b: array[32], k: int) { if (k > 1) { call ping(b, k); } else { b[1] = 0.0; } }
    proc selfy(b: array[32], k: int) { b[k] = 2.0; call selfy(b, k); }
    proc main(n: int) {
        array a[32];
        for i = 1 to n { call ping(a, i); }
        for i = 1 to n { call selfy(a, i); }
        for i = 1 to n { a[i] = a[i] + 1.0; }
    }";

#[test]
fn wide_call_graph_is_deterministic_across_worker_counts() {
    for opts in [Options::base(), Options::guarded(), Options::predicated()] {
        let baseline = render(WIDE_PROGRAM, &opts, 1);
        for jobs in 2..=4 {
            assert_eq!(
                baseline,
                render(WIDE_PROGRAM, &opts, jobs),
                "jobs={jobs} diverged ({:?})",
                opts.variant
            );
        }
    }
}

#[test]
fn repeated_parallel_runs_are_identical() {
    let opts = Options::predicated();
    let a = render(WIDE_PROGRAM, &opts, 4);
    let b = render(WIDE_PROGRAM, &opts, 4);
    assert_eq!(a, b);
}

#[test]
fn recursive_call_graphs_are_stable_under_parallel_driver() {
    // Recursive procedures get conservative summaries; that choice (and
    // everything downstream of it) must not depend on the worker count.
    let opts = Options::predicated();
    let baseline = render(RECURSIVE_PROGRAM, &opts, 1);
    for jobs in 2..=4 {
        assert_eq!(baseline, render(RECURSIVE_PROGRAM, &opts, jobs));
    }
    // The conservative summaries disqualify the enclosing loops (has_io),
    // while the pure loop stays parallel.
    let prog = parse_program(RECURSIVE_PROGRAM).unwrap();
    let sess = AnalysisSession::new(opts).with_jobs(4);
    let (result, _) = analyze_program_session(&prog, &sess).unwrap();
    let main_loops: Vec<_> = result.loops.iter().filter(|l| l.proc == "main").collect();
    assert_eq!(main_loops.len(), 3);
    assert!(main_loops[0].not_candidate.is_some());
    assert!(main_loops[1].not_candidate.is_some());
    assert!(main_loops[2].parallelized());
}
