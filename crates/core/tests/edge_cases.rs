//! Edge-case tests for the analysis: strided loops, symbolic and
//! non-affine bounds, deep call chains, recursion, and conservative
//! fallbacks.

use padfa_core::{analyze_program, Options, Outcome};
use padfa_ir::parse::parse_program;

fn outcome(src: &str, label: &str, opts: &Options) -> Outcome {
    let prog = parse_program(src).unwrap_or_else(|e| panic!("{e}"));
    analyze_program(&prog, opts)
        .unwrap()
        .by_label(label)
        .unwrap_or_else(|| panic!("no loop {label}"))
        .outcome
        .clone()
}

#[test]
fn strided_loop_independent() {
    // Writes a[i] for i = 1, 4, 7, ...: distinct elements.
    let src = "proc m(n: int) { array a[100];
        for@s i = 1 to n step 3 { a[i] = a[i] + 1.0; } }";
    assert!(matches!(
        outcome(src, "s", &Options::predicated()),
        Outcome::Parallel
    ));
}

#[test]
fn strided_write_read_offset_within_stride() {
    // Write a[i], read a[i+1] with step 3: iteration i writes i, another
    // iteration reads i' + 1 ∈ {i'+1}; i = i'+1 requires i ≡ 1 and
    // i' ≡ 0 (mod 3) from the same lattice — impossible, so independent.
    let src = "proc m(n: int) { array a[103];
        for@s i = 1 to n step 3 { a[i] = a[i + 1] * 0.5; } }";
    assert!(
        outcome(src, "s", &Options::predicated()).is_parallelizable(),
        "stride lattice must separate a[i] from a[i+1]"
    );
}

#[test]
fn strided_conflict_detected() {
    // Write a[i], read a[i+3] with step 3: these do collide.
    let src = "proc m(n: int) { array a[103];
        for@s i = 1 to n step 3 { a[i] = a[i + 3] * 0.5; } }";
    assert!(matches!(
        outcome(src, "s", &Options::predicated()),
        Outcome::Sequential
    ));
}

#[test]
fn symbolic_bounds_from_outer_loop() {
    // Triangular nest: inner bound is the outer index.
    let src = "proc m(n: int) { array a[64, 64];
        for@outer i = 1 to n {
            for@inner j = 1 to i { a[i, j] = i + j; }
        } }";
    assert!(outcome(src, "outer", &Options::predicated()).is_parallelizable());
    assert!(outcome(src, "inner", &Options::predicated()).is_parallelizable());
}

#[test]
fn non_affine_bound_conservative_but_usable() {
    // Upper bound reads an array element: the iteration space is
    // unknown, so must-writes vanish, but a self-update loop is still
    // independent.
    let src = "proc m(k: array[4] of int) { array a[100];
        var e: int;
        e = k[1];
        for@u i = 1 to e { a[i] = a[i] + 1.0; } }";
    assert!(outcome(src, "u", &Options::predicated()).is_parallelizable());
    // With a recurrence it must stay sequential.
    let src2 = "proc m(k: array[4] of int) { array a[100];
        var e: int;
        e = k[1];
        for@u i = 2 to e { a[i] = a[i - 1]; } }";
    assert!(matches!(
        outcome(src2, "u", &Options::predicated()),
        Outcome::Sequential
    ));
}

#[test]
fn three_deep_call_chain() {
    let src = "proc leaf(c: array[32], n: int) {
        for@lf j = 1 to n { c[j] = c[j] + 1.0; }
    }
    proc mid(b: array[32], n: int) { call leaf(b, n); }
    proc m(n: int) { array a[32];
        for@top i = 1 to n { a[i] = i * 1.0; }
        call mid(a, n);
    }";
    let prog = parse_program(src).unwrap();
    let r = analyze_program(&prog, &Options::predicated()).unwrap();
    assert!(r.by_label("lf").unwrap().outcome.is_parallelizable());
    assert!(r.by_label("top").unwrap().outcome.is_parallelizable());
}

#[test]
fn recursion_is_conservative() {
    let src = "proc rec(a: array[16], n: int) {
        for@inner j = 1 to n { a[j] = a[j] + 1.0; }
        call rec(a, n);
    }
    proc m(n: int) { array b[16];
        for@outer i = 1 to n { call rec(b, n); }
    }";
    let prog = parse_program(src).unwrap();
    let r = analyze_program(&prog, &Options::predicated()).unwrap();
    // The caller loop must not be parallelized (conservative summary
    // marks recursive callees as I/O).
    let outer = r.by_label("outer").unwrap();
    assert!(!outer.parallelized());
}

#[test]
fn guard_on_array_element_not_testable() {
    // The guard reads an array element: it cannot float out as a cheap
    // scalar run-time test, and the loop carries a potential dependence.
    let src = "proc m(n: int, f: array[100]) { array h[101]; array a[100];
        for@g i = 1 to n {
            if (f[i] > 0.5) { h[i] = a[i]; }
            a[i] = h[i + 1];
        } }";
    match outcome(src, "g", &Options::predicated()) {
        Outcome::Sequential => {}
        Outcome::ParallelIf(t) => {
            panic!("array-dependent guard must not become a test: {t}")
        }
        Outcome::Parallel => panic!("loop carries a potential dependence"),
    }
}

#[test]
fn loop_invariant_guard_from_outer_scope_is_testable() {
    // The guard reads the *outer* loop index: loop-invariant for the
    // inner loop, so the inner loop gets a run-time test even though the
    // outer cannot.
    let src = "proc m(n: int) { array h[101]; array a[64, 64];
        for@outer i = 1 to n {
            for@inner j = 1 to n {
                if (i > 5) { h[j] = a[i, j]; }
                a[i, j] = h[j + 1];
            }
        } }";
    match outcome(src, "inner", &Options::predicated()) {
        Outcome::ParallelIf(t) => {
            let vars = t.scalar_vars();
            assert!(
                vars.contains(&padfa_omega::Var::new("i")),
                "test should mention the outer index: {t}"
            );
        }
        other => panic!("expected run-time test on the inner loop, got {other}"),
    }
}

#[test]
fn empty_body_loop() {
    let src = "proc m(n: int) { for@e i = 1 to n { } }";
    assert!(matches!(
        outcome(src, "e", &Options::predicated()),
        Outcome::Parallel
    ));
}

#[test]
fn write_only_array_parallel_via_privatization_or_masking() {
    // All iterations write a[1]: an output dependence the ordered merge
    // handles via privatization.
    let src = "proc m(n: int) { array a[4];
        for@w i = 1 to n { a[1] = i * 1.0; } }";
    let prog = parse_program(src).unwrap();
    let r = analyze_program(&prog, &Options::predicated()).unwrap();
    let report = r.by_label("w").unwrap();
    assert!(report.outcome.is_parallelizable(), "{}", report.outcome);
    assert!(
        report
            .privatized
            .iter()
            .any(|p| p.array == padfa_omega::Var::new("a")),
        "write-only conflicts resolve by privatization"
    );
}

#[test]
fn if_else_complete_write_is_must() {
    // Both branches write a[i]: the element is definitely written, so a
    // later read in the same iteration is covered even in base analysis.
    let src = "proc m(n: int, x: int) { array a[100]; array b[100];
        for@c i = 1 to n {
            if (x > 0) { a[i] = 1.0; } else { a[i] = 2.0; }
            b[i] = a[i];
        } }";
    assert!(matches!(
        outcome(src, "c", &Options::base()),
        Outcome::Parallel
    ));
}

#[test]
fn max_pieces_one_still_sound() {
    // K = 1 must never produce unsound results, only weaker ones.
    let src = "proc m(n: int, x: int) { array h[11]; array a[10];
        for@mg i = 1 to n {
            if (x > 5) { h[i] = a[i]; }
            if (x <= 5) { h[i + 1] = a[i] * 2.0; }
            if (x > 5) { a[i] = h[i]; }
            if (x <= 5) { a[i] = h[i + 1]; }
        } }";
    let mut k1 = Options::predicated();
    k1.max_pieces = 1;
    assert!(matches!(outcome(src, "mg", &k1), Outcome::Sequential));
    assert!(matches!(
        outcome(src, "mg", &Options::predicated()),
        Outcome::Parallel
    ));
}

#[test]
fn variant_monotonicity_across_many_shapes() {
    // For a bag of loop shapes: base ⊆ guarded ⊆ predicated in terms of
    // parallelization (no variant may do worse than a weaker one).
    let shapes = [
        "for@l i = 1 to n { a[i] = a[i] + 1.0; }",
        "for@l i = 2 to n { a[i] = a[i - 1]; }",
        "for@l i = 1 to n { if (x > 0) { a[i] = 1.0; } }",
        "for@l i = 1 to n { if (x > 0) { a[i] = 1.0; } b[i] = a[i]; }",
        "for@l i = 1 to n { s = s + a[i]; }",
        "for@l i = 1 to n { a[i] = b[n + 1 - i]; }",
        "for@l i = 1 to n step 2 { a[i] = a[i + 1]; }",
    ];
    for shape in shapes {
        let src = format!(
            "proc m(n: int, x: int) {{ array a[101]; array b[101]; var s: real; {shape} }}"
        );
        let base = outcome(&src, "l", &Options::base()).is_parallelizable();
        let guarded = outcome(&src, "l", &Options::guarded()).is_parallelizable();
        let pred = outcome(&src, "l", &Options::predicated()).is_parallelizable();
        assert!(!base || guarded, "guarded regressed on {shape}");
        assert!(!guarded || pred, "predicated regressed on {shape}");
    }
}

#[test]
fn downward_loop_independent() {
    let src = "proc m(n: int) { array a[100];
        for@d i = n to 1 step -1 { a[i] = a[i] + 1.0; } }";
    assert!(matches!(
        outcome(src, "d", &Options::predicated()),
        Outcome::Parallel
    ));
}

#[test]
fn downward_recurrence_sequential() {
    // Reads the element the *next executed* iteration writes.
    let src = "proc m(n: int) { array a[101];
        for@d i = n to 2 step -1 { a[i] = a[i - 1] * 0.5; } }";
    assert!(matches!(
        outcome(src, "d", &Options::predicated()),
        Outcome::Sequential
    ));
}

#[test]
fn downward_loop_must_write_region() {
    // The downward write loop covers [1..n]; the following read is not
    // exposed at the outer level, so the outer loop privatizes.
    let src = "proc m(c: int, n: int) { array t[64]; array a[64, 64];
        for@outer i = 1 to c {
            for j = n to 1 step -1 { t[j] = i + j; }
            for j = 1 to n { a[i, j] = t[j]; }
        } }";
    let prog = padfa_ir::parse::parse_program(src).unwrap();
    let r = analyze_program(&prog, &Options::predicated()).unwrap();
    let outer = r.by_label("outer").unwrap();
    assert!(outer.outcome.is_parallelizable(), "{}", outer.outcome);
}
