//! Panic-freedom smoke fuzz: the analysis must return `Ok` (possibly
//! degraded) on every generator-produced program, under generous and
//! starved budgets alike, for every variant. Kept fast enough to run
//! in CI on every push (~40 seeds, well under 30 seconds).

use padfa_core::{analyze_program, Options, WorkBudget};
use padfa_ir::testgen::{random_program, GenConfig};

#[test]
fn analysis_is_total_over_random_programs() {
    for seed in 0..40u64 {
        let prog = random_program(seed, GenConfig::default());
        for opts in [Options::base(), Options::guarded(), Options::predicated()] {
            for budget in [
                WorkBudget::UNLIMITED,
                WorkBudget::steps(10_000),
                WorkBudget::steps(25),
                WorkBudget::steps(1),
            ] {
                let opts = opts.clone().with_budget(budget);
                let result = analyze_program(&prog, &opts);
                assert!(
                    result.is_ok(),
                    "seed {seed} variant {:?} budget {:?}: {:?}",
                    opts.variant,
                    opts.budget,
                    result.err()
                );
            }
        }
    }
}

/// Starved budgets never *gain* parallel loops relative to the exact
/// run — the differential monotonicity property, on adversarial random
/// shapes rather than hand-written fixtures.
#[test]
fn random_programs_degrade_monotonically() {
    for seed in 0..20u64 {
        let prog = random_program(seed, GenConfig::default());
        let exact = analyze_program(&prog, &Options::predicated()).unwrap();
        for steps in [1, 50, 500] {
            let opts = Options::predicated().with_budget(WorkBudget::steps(steps));
            let starved = analyze_program(&prog, &opts).unwrap();
            assert_eq!(exact.loops.len(), starved.loops.len());
            for (ex, st) in exact.loops.iter().zip(starved.loops.iter()) {
                assert!(
                    !st.parallelized() || ex.parallelized(),
                    "seed {seed} budget {steps}: loop {:?} parallel only when starved",
                    st.id
                );
            }
        }
    }
}
