//! End-to-end tests for the persistent memo store: warm-vs-cold output
//! identity, crash consistency under injected faults, dependency-driven
//! invalidation, and a randomized codec round-trip property.

use padfa_core::store::codec;
use padfa_core::{
    analyze_program_session, AnalysisSession, IoFaultKind, IoFaultPlan, Options, Store,
    StoreConfig, StoreError,
};
use padfa_ir::parse::parse_program;
use padfa_omega::{Constraint, Disjunction, LinExpr, System, Tier, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn test_dir(suffix: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("padfa_store_e2e_{}_{suffix}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn cfg(dir: &Path) -> StoreConfig {
    StoreConfig::new(dir, "e2e-rev")
}

const PROGRAM: &str = "
proc init(row: array[100], n: int) {
    for j = 1 to n { row[j] = 0.0; }
}
proc work(n: int, x: int) {
    array a[100, 100]; array help[100];
    call init(help, n);
    for i = 1 to n {
        if (x > 5) {
            for j = 1 to n { help[j] = 2.0; }
        }
        if (x > 5) {
            for j = 1 to n { a[i, j] = help[j]; }
        }
    }
}
proc main(n: int) {
    array b[100]; var s: real;
    for i = 1 to n { b[i] = 1.0; }
    call init(b, n);
    for i = 2 to n { b[i] = b[i - 1] + 1.0; }
    for i = 1 to n { s = s + b[i]; }
}
";

fn run_with_store(store: Option<Arc<Store>>) -> padfa_core::AnalysisResult {
    let prog = parse_program(PROGRAM).unwrap();
    let mut sess = AnalysisSession::new(Options::predicated());
    if let Some(s) = store {
        sess = sess.with_store(s);
    }
    let (result, _) = analyze_program_session(&prog, &sess).unwrap();
    result
}

#[test]
fn warm_run_is_bit_identical_and_mostly_hits() {
    let dir = test_dir("warmcold");
    let baseline = run_with_store(None);

    // Cold: populates the store.
    let cold_store = Arc::new(Store::open(cfg(&dir)));
    let cold = run_with_store(Some(Arc::clone(&cold_store)));
    assert_eq!(cold.loops, baseline.loops, "store must not change results");
    assert!(cold_store.take_warnings().is_empty());
    let cold_stats = cold_store.stats();
    assert!(cold_stats.puts > 0, "cold run must persist entries");
    drop(cold_store); // seals the journal

    // Warm: every procedure summary should come from disk.
    let warm_store = Arc::new(Store::open(cfg(&dir)));
    let warm = run_with_store(Some(Arc::clone(&warm_store)));
    assert_eq!(warm.loops, baseline.loops, "warm must be bit-identical");
    let st = warm_store.stats();
    assert!(st.hits > 0, "warm run must hit");
    assert!(
        st.hit_rate() >= 0.8,
        "warm hit rate {:.2} below 0.8 ({} hits / {} misses)",
        st.hit_rate(),
        st.hits,
        st.misses
    );
    assert!(warm_store.take_warnings().is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_mid_write_then_reopen_is_sound() {
    let dir = test_dir("crash");
    let baseline = run_with_store(None);

    // "Crash" while persisting: a torn write stops the journal partway
    // through the run. Results must be unaffected.
    let faults = IoFaultPlan::at(IoFaultKind::TornWrite, 7);
    let crashing = Arc::new(Store::open(cfg(&dir).with_faults(faults)));
    let during = run_with_store(Some(Arc::clone(&crashing)));
    assert_eq!(during.loops, baseline.loops);
    assert!(crashing.stats().writes_degraded);
    let warnings = crashing.take_warnings();
    assert!(
        warnings.iter().any(|w| matches!(w, StoreError::Io { .. })),
        "torn write must surface a typed Io warning"
    );
    // Simulate the crash for real: the store is dropped with writes
    // degraded, leaving the torn active.tmp on disk.
    drop(crashing);
    assert!(dir.join("active.tmp").exists(), "torn tail left behind");

    // Reopen: salvage the complete prefix, quarantine the torn tail,
    // and produce identical analysis output again.
    let reopened = Arc::new(Store::open(cfg(&dir)));
    let st = reopened.stats();
    assert!(st.quarantined >= 1, "torn tail must be quarantined");
    let warnings = reopened.take_warnings();
    assert!(warnings
        .iter()
        .any(|w| matches!(w, StoreError::Corrupt { .. })));
    let after = run_with_store(Some(Arc::clone(&reopened)));
    assert_eq!(after.loops, baseline.loops);
    drop(reopened); // clean close seals the journal
    assert!(!dir.join("active.tmp").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn every_fault_kind_degrades_without_changing_results() {
    let baseline = run_with_store(None);
    let plans = [
        ("write-fail", IoFaultPlan::at(IoFaultKind::WriteFail, 1)),
        (
            "write-fail-late",
            IoFaultPlan::at(IoFaultKind::WriteFail, 12),
        ),
        ("torn-write", IoFaultPlan::at(IoFaultKind::TornWrite, 3)),
        ("read-fail", IoFaultPlan::at(IoFaultKind::ReadFail, 1)),
        ("bitflip", IoFaultPlan::at(IoFaultKind::BitFlip, 1)),
        ("seeded", IoFaultPlan::seeded(0xC0FFEE, 6, 20)),
    ];
    for (name, plan) in plans {
        let dir = test_dir(&format!("fault_{name}"));
        // Warm the store first so read-side faults have something to hit.
        {
            let s = Arc::new(Store::open(cfg(&dir)));
            let r = run_with_store(Some(s));
            assert_eq!(r.loops, baseline.loops, "warming run, plan {name}");
        }
        let s = Arc::new(Store::open(cfg(&dir).with_faults(plan)));
        let r = run_with_store(Some(Arc::clone(&s)));
        assert_eq!(r.loops, baseline.loops, "plan {name} changed results");
        drop(s);
        // And a clean follow-up run over whatever state the fault left.
        let s = Arc::new(Store::open(cfg(&dir)));
        let r = run_with_store(Some(Arc::clone(&s)));
        assert_eq!(r.loops, baseline.loops, "post-fault reopen, plan {name}");
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn editing_a_procedure_misses_and_invalidates() {
    let dir = test_dir("edit");
    {
        let s = Arc::new(Store::open(cfg(&dir)));
        run_with_store(Some(s));
    }
    // Same program, one procedure body edited: `init` writes 1.0 now.
    let edited_src = PROGRAM.replace("row[j] = 0.0;", "row[j] = 1.0;");
    let edited = parse_program(&edited_src).unwrap();
    let s = Arc::new(Store::open(cfg(&dir)));
    let sess = AnalysisSession::new(Options::predicated()).with_store(Arc::clone(&s));
    analyze_program_session(&edited, &sess).unwrap();
    let st = s.stats();
    // `init` changed, so it and both its callers (`work`, `main`) must
    // recompute — their Merkle keys changed.
    assert!(st.puts > 0, "edited procedures must be re-persisted");

    // Eager invalidation: tombstone everything depending on the ORIGINAL
    // init's IR.
    let orig = parse_program(PROGRAM).unwrap();
    let init = orig.proc("init").unwrap();
    let ir = padfa_core::store::hash_procedure(init);
    let n = s.invalidate_procedure(ir);
    assert!(
        n >= 3,
        "init + its transitive callers should be invalidated, got {n}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn second_session_sharing_one_store_stays_consistent() {
    // The corpus runner shares one Arc<Store> across many programs;
    // interleaved sessions must not corrupt each other.
    let dir = test_dir("shared");
    let s = Arc::new(Store::open(cfg(&dir)));
    let r1 = run_with_store(Some(Arc::clone(&s)));
    let r2 = run_with_store(Some(Arc::clone(&s)));
    assert_eq!(r1.loops, r2.loops);
    let st = s.stats();
    assert!(st.hits > 0, "second session should hit the first's entries");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Randomized codec round-trip property
// ---------------------------------------------------------------------

fn random_linexpr(rng: &mut StdRng) -> LinExpr {
    let mut e = LinExpr::constant(rng.gen_range(-50..50));
    for _ in 0..rng.gen_range(0..4) {
        let v = Var::new(&format!("v{}", rng.gen_range(0..6)));
        e = e + LinExpr::term(v, rng.gen_range(-9..10));
    }
    e
}

fn random_system(rng: &mut StdRng) -> System {
    let mut cs = Vec::new();
    for _ in 0..rng.gen_range(0..5) {
        let a = random_linexpr(rng);
        let b = random_linexpr(rng);
        cs.push(if rng.gen_bool(0.5) {
            Constraint::geq(a, b)
        } else {
            Constraint::eq(a, b)
        });
    }
    System::from_constraints(cs)
}

fn random_region(rng: &mut StdRng) -> Disjunction {
    let mut d = Disjunction::empty();
    for _ in 0..rng.gen_range(0..4) {
        d.push(random_system(rng));
    }
    if rng.gen_bool(0.3) {
        d.set_inexact();
    }
    d
}

#[test]
fn region_codec_round_trips_random_values() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for case in 0..500 {
        let region = random_region(&mut rng);
        let delta = rng.gen_range(0..10u64);
        let tier = if rng.gen_bool(0.5) {
            Tier::Dense
        } else {
            Tier::General
        };
        let bytes = codec::encode_region_entry(&region, tier, delta);
        let (decoded, t2, d2) =
            codec::decode_region_entry(&bytes).unwrap_or_else(|| panic!("case {case} undecodable"));
        assert_eq!(decoded, region, "case {case} changed value");
        assert_eq!(t2, tier, "case {case} changed tier");
        assert_eq!(d2, delta, "case {case} changed delta");
        // The dense-cache state of every piece must survive too: a
        // decoded system answering on a different tier than the stored
        // one would split warm/cold tier counters.
        for (a, b) in decoded.systems().iter().zip(region.systems()) {
            assert_eq!(a.has_dense(), b.has_dense(), "case {case} changed tier tag");
        }
        // Re-encoding the decoded value must be byte-stable (the store
        // keys on encoded bytes, so drift would break hit identity).
        assert_eq!(
            codec::encode_region_entry(&decoded, t2, d2),
            bytes,
            "case {case} not byte-stable"
        );
    }
}

#[test]
fn region_codec_rejects_random_mutations() {
    let mut rng = StdRng::seed_from_u64(0x0BAD_5EED);
    for case in 0..300 {
        let region = random_region(&mut rng);
        let bytes = codec::encode_region_entry(&region, Tier::General, 1);
        if bytes.is_empty() {
            continue;
        }
        // Truncation anywhere must decode to None, never panic.
        let cut = rng.gen_range(0..bytes.len());
        assert!(
            codec::decode_region_entry(&bytes[..cut]).is_none(),
            "case {case}: truncation at {cut} decoded"
        );
        // A random byte mutation must either fail to decode or decode to
        // *some* value without panicking (the journal checksum is the
        // integrity layer; the codec only has to be crash-safe).
        let mut m = bytes.clone();
        let i = rng.gen_range(0..m.len());
        m[i] = m[i].wrapping_add(rng.gen_range(1..=255u8));
        let _ = codec::decode_region_entry(&m);
    }
}
