//! Substrate micro-benchmarks: the hot operations of the linear engine
//! and the predicate domain.

use padfa_bench::harness::Criterion;
use padfa_bench::{criterion_group, criterion_main};
use padfa_omega::{Constraint, Disjunction, Limits, LinExpr, System, Var};
use padfa_pred::Pred;

fn tri_system() -> System {
    // { 1 <= i <= n, 1 <= j <= i, d == 2i + 3j }
    let (i, j, n, d) = (Var::new("i"), Var::new("j"), Var::new("n"), Var::new("d"));
    System::from_constraints([
        Constraint::geq(LinExpr::var(i), LinExpr::constant(1)),
        Constraint::leq(LinExpr::var(i), LinExpr::var(n)),
        Constraint::geq(LinExpr::var(j), LinExpr::constant(1)),
        Constraint::leq(LinExpr::var(j), LinExpr::var(i)),
        Constraint::eq(LinExpr::var(d), LinExpr::term(i, 2) + LinExpr::term(j, 3)),
    ])
}

fn bench_fm(c: &mut Criterion) {
    let sys = tri_system();
    let limits = Limits::default();
    let (i, j) = (Var::new("i"), Var::new("j"));
    c.bench_function("fm_project_two_vars", |b| {
        b.iter(|| std::hint::black_box(&sys).project_out(&[i, j], limits))
    });
    c.bench_function("fm_is_empty", |b| {
        b.iter(|| std::hint::black_box(&sys).is_empty(limits))
    });
}

fn bench_regions(c: &mut Criterion) {
    let limits = Limits::default();
    let d = Var::new("d");
    let interval = |lo: i64, hi: i64| {
        Disjunction::from_system(System::from_constraints([
            Constraint::geq(LinExpr::var(d), LinExpr::constant(lo)),
            Constraint::leq(LinExpr::var(d), LinExpr::constant(hi)),
        ]))
    };
    let big = interval(1, 1000);
    let holes = interval(100, 200).union(&interval(400, 500), limits);
    c.bench_function("region_subtract", |b| {
        b.iter(|| std::hint::black_box(&big).subtract(&holes, limits))
    });
    c.bench_function("region_subset", |b| {
        b.iter(|| std::hint::black_box(&holes).subset_of(&big, limits))
    });
    c.bench_function("region_union_subsume", |b| {
        b.iter(|| std::hint::black_box(&big).union(&holes, limits))
    });
}

fn bench_predicates(c: &mut Criterion) {
    let p = |s: &str| Pred::from_bool(&padfa_ir::parse::parse_bool_expr(s).unwrap());
    let a = p("x > 5 and y <= 3 and n >= 10");
    let q = p("x > 3");
    let limits = Limits::default();
    c.bench_function("pred_and_simplify", |b| {
        b.iter(|| Pred::and(std::hint::black_box(&a).clone(), q.clone()))
    });
    c.bench_function("pred_implies", |b| {
        b.iter(|| std::hint::black_box(&a).implies(&q, limits))
    });
    c.bench_function("pred_negate", |b| {
        b.iter(|| std::hint::black_box(&a).negate())
    });
}

fn bench_parse(c: &mut Criterion) {
    let bp = padfa_suite::corpus::build_program("turb3d").expect("program");
    c.bench_function("parse_turb3d", |b| {
        b.iter(|| padfa_ir::parse::parse_program(std::hint::black_box(&bp.source)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_fm,
    bench_regions,
    bench_predicates,
    bench_parse
);
criterion_main!(benches);
