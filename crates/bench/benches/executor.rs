//! Executor benchmarks: interpreter throughput, parallel-for overhead,
//! two-version test cost, and the ELPD instrumentation overhead.

use padfa_bench::harness::{BenchmarkId, Criterion};
use padfa_bench::{criterion_group, criterion_main};
use padfa_core::{analyze_program, Options};
use padfa_ir::LoopId;
use padfa_rt::elpd::elpd_inspect;
use padfa_rt::{run_main, ArgValue, ExecPlan, RunConfig};
use padfa_suite::kernels::{kernel, kernel_args};

fn bench_interpreter(c: &mut Criterion) {
    let prog = kernel("hydro2d", 16, 64);
    let args = kernel_args("hydro2d", 16);
    c.bench_function("interp_sequential", |b| {
        b.iter(|| run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap())
    });
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let prog = kernel("hydro2d", 16, 64);
    let args = kernel_args("hydro2d", 16);
    let analysis = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let mut group = c.benchmark_group("parallel_for");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        let plan = ExecPlan::from_analysis(&prog, &analysis);
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| run_main(&prog, args.clone(), &RunConfig::parallel(w, plan.clone())).unwrap())
        });
    }
    group.finish();
}

fn bench_two_version_test(c: &mut Criterion) {
    // The run-time test itself must be cheap: measure a run whose test
    // always fails (sequential fallback) against a plain sequential run.
    let prog = kernel("su2cor", 16, 64);
    let analysis = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let plan = ExecPlan::from_analysis(&prog, &analysis);
    // x = 9 makes the guard true, so the test fails and the loop runs
    // sequentially: the difference vs. RunConfig::sequential is the test.
    let args = vec![ArgValue::Int(16), ArgValue::Int(9)];
    let mut group = c.benchmark_group("two_version");
    group.bench_function("test_fails_fallback", |b| {
        b.iter(|| run_main(&prog, args.clone(), &RunConfig::parallel(4, plan.clone())).unwrap())
    });
    group.bench_function("plain_sequential", |b| {
        b.iter(|| run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap())
    });
    group.finish();
}

fn bench_elpd_overhead(c: &mut Criterion) {
    let prog = kernel("hydro2d", 16, 64);
    let args = kernel_args("hydro2d", 16);
    let mut group = c.benchmark_group("elpd");
    group.sample_size(10);
    group.bench_function("instrumented", |b| {
        b.iter(|| elpd_inspect(&prog, args.clone(), LoopId(0), &[]).unwrap())
    });
    group.bench_function("uninstrumented", |b| {
        b.iter(|| run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_interpreter,
    bench_parallel_scaling,
    bench_two_version_test,
    bench_elpd_overhead
);
criterion_main!(benches);
