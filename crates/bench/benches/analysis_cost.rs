//! Analysis-cost comparison (the paper's compile-time overhead aspect):
//! how much slower is predicated analysis than the unpredicated
//! baseline, per corpus program?

use padfa_bench::harness::{BenchmarkId, Criterion};
use padfa_bench::{criterion_group, criterion_main};
use padfa_core::{analyze_program, Options};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_cost");
    group.sample_size(10);
    for name in ["tomcatv", "turb3d", "cgm"] {
        let bp = padfa_suite::corpus::build_program(name).expect("corpus program");
        for (variant, opts) in [
            ("base", Options::base()),
            ("guarded", Options::guarded()),
            ("predicated", Options::predicated()),
        ] {
            group.bench_with_input(BenchmarkId::new(variant, name), &bp.program, |b, prog| {
                b.iter(|| analyze_program(std::hint::black_box(prog), &opts))
            });
        }
    }
    group.finish();
}

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("analysis_fig1");
    for (name, prog) in [
        ("fig1a", padfa_suite::fig1::fig1a()),
        ("fig1b", padfa_suite::fig1::fig1b()),
        ("fig1c", padfa_suite::fig1::fig1c()),
        ("fig1d", padfa_suite::fig1::fig1d()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| analyze_program(std::hint::black_box(&prog), &Options::predicated()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_fig1);
criterion_main!(benches);
