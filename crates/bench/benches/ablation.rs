//! Ablation benchmarks: analysis time as a function of the design
//! choices DESIGN.md calls out (K, embedding, extraction, run-time
//! tests). The loop-count effect of the same toggles is reported by the
//! `ablation` binary.

use padfa_bench::harness::{BenchmarkId, Criterion};
use padfa_bench::{criterion_group, criterion_main};
use padfa_core::{analyze_program, Options};

fn bench_k(c: &mut Criterion) {
    let bp = padfa_suite::corpus::build_program("turb3d").expect("program");
    let mut group = c.benchmark_group("ablation_k");
    group.sample_size(10);
    for k in [1usize, 2, 4, 8] {
        let mut opts = Options::predicated();
        opts.max_pieces = k;
        group.bench_with_input(BenchmarkId::from_parameter(k), &bp.program, |b, prog| {
            b.iter(|| analyze_program(std::hint::black_box(prog), &opts))
        });
    }
    group.finish();
}

fn bench_toggles(c: &mut Criterion) {
    let bp = padfa_suite::corpus::build_program("turb3d").expect("program");
    let mut group = c.benchmark_group("ablation_toggles");
    group.sample_size(10);
    let mut no_embed = Options::predicated();
    no_embed.embedding = false;
    let mut no_extract = Options::predicated();
    no_extract.extraction = false;
    let mut no_rt = Options::predicated();
    no_rt.runtime_tests = false;
    for (name, opts) in [
        ("full", Options::predicated()),
        ("no_embedding", no_embed),
        ("no_extraction", no_extract),
        ("no_runtime_tests", no_rt),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &bp.program, |b, prog| {
            b.iter(|| analyze_program(std::hint::black_box(prog), &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k, bench_toggles);
criterion_main!(benches);
