//! Minimal, dependency-free benchmark harness exposing the subset of the
//! Criterion API the bench targets use (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher`, plus the `criterion_group!` /
//! `criterion_main!` macros exported from the crate root).
//!
//! The build environment cannot fetch criterion from a registry, and
//! these benches only need honest wall-clock medians, not statistical
//! regression analysis. Each benchmark is calibrated to a fixed time
//! budget, sampled repeatedly, and reported as `median ns/iter`.

use std::time::{Duration, Instant};

/// Per-sample time budget; total time per bench is roughly
/// `sample_size * TARGET_SAMPLE_TIME` capped by `MAX_BENCH_TIME`.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
const MAX_BENCH_TIME: Duration = Duration::from_secs(3);

/// Top-level driver, one per bench binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_bench(name, self.sample_size, f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&format!("{}/{}", self.name, id.id), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        run_bench(&name, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Benchmark identifier: a function name, a parameter, or both.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_once(iters: u64, f: &mut impl FnMut(&mut Bencher)) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_bench(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: how many iterations fit the per-sample budget?
    let warmup = run_once(1, &mut f);
    let iters = if warmup >= TARGET_SAMPLE_TIME {
        1
    } else {
        let per_iter = warmup.as_nanos().max(1);
        (TARGET_SAMPLE_TIME.as_nanos() / per_iter).clamp(1, 1_000_000) as u64
    };
    let deadline = Instant::now() + MAX_BENCH_TIME;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let elapsed = run_once(iters, &mut f);
        samples.push(elapsed.as_nanos() as f64 / iters as f64);
        if Instant::now() > deadline {
            break;
        }
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name:<40} {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1}, {} samples x {iters} iters)",
        samples.len()
    );
}

/// Expands to a function running each registered benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::harness::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` invoking every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::from_parameter(4usize), &4usize, |b, &n| {
            b.iter(|| (0..n).product::<usize>());
        });
        group.finish();
        c.bench_function("top", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
        assert_eq!(BenchmarkId::from("plain").id, "plain");
    }
}
