//! # padfa-bench
//!
//! Regenerators for every table and figure of the PPoPP'99 evaluation,
//! plus micro-benchmarks of the substrate (driven by the dependency-free
//! harness in [`harness`]).
//!
//! Binaries (see `EXPERIMENTS.md` for the mapping to paper artifacts):
//!
//! * `table1` — per-program loop statistics (base vs guarded vs
//!   predicated, ELPD-parallel remainder, recovery rate);
//! * `table2` — detail of loops newly parallelized by the predicated
//!   analysis (coverage, granularity, mechanism, test kind);
//! * `speedups` — the speedup figure for the five improved programs;
//! * `ablation` — design-choice ablations (K, embedding, extraction,
//!   run-time tests).

pub mod harness;

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Render an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:>w$}  ", w = w);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
    out.push_str(&"-".repeat(total.saturating_sub(2)));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:>w$}  ", w = w);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Median wall-clock time of `runs` executions of `f`.
pub fn median_time(runs: usize, mut f: impl FnMut()) -> Duration {
    let mut samples: Vec<Duration> = (0..runs.max(1))
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "24".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("24"));
    }

    #[test]
    fn median_time_returns_something() {
        let d = median_time(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }
}
