//! Service load generator: hammer an in-process `padfa-service` daemon
//! with concurrent clients over real sockets, covering the full 30-
//! program corpus, and write latency/shed statistics as
//! `BENCH_service.json` (consumed by CI as a build artifact).
//!
//! Usage: `cargo run --release -p padfa-bench --bin service_load
//!         [--requests N] [--clients N] [--workers N] [--queue N]
//!         [--store DIR] [--out PATH]`
//!
//! Each client thread claims request indices from a shared counter and
//! round-robins the corpus programs, so every program is exercised and
//! the request mix is deterministic regardless of thread scheduling.
//! Shed responses (429) are expected under deliberate overload and are
//! reported as `shed_rate` rather than failures; any 5xx or transport
//! error fails the run.

use padfa_core::{Store, StoreConfig};
use padfa_service::{Server, ServiceDeps, ServicePolicy};
use padfa_suite::corpus::build_corpus;
use std::fmt::Write as _;
use std::io::{Read, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn git_rev() -> String {
    let out = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
    };
    match out(&["rev-parse", "--short=12", "HEAD"]).filter(|s| !s.is_empty()) {
        Some(rev) => {
            if out(&["status", "--porcelain"]).map(|s| !s.is_empty()) == Some(true) {
                format!("{rev}+dirty")
            } else {
                rev
            }
        }
        None => "unknown".to_string(),
    }
}

fn host_info() -> String {
    let host = std::env::var("HOSTNAME")
        .or_else(|_| std::env::var("HOST"))
        .unwrap_or_else(|_| "unknown-host".to_string());
    format!(
        "{host} ({} {})",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

/// One blocking HTTP request; returns (status, latency). Transport
/// failures return status 0 (counted separately, tolerated only in
/// tiny numbers — a torn shed write under heavy accept pressure).
fn post_analyze(addr: SocketAddr, body: &[u8]) -> (u16, Duration) {
    let t0 = Instant::now();
    let status = (|| -> Option<u16> {
        let mut s = TcpStream::connect(addr).ok()?;
        s.set_read_timeout(Some(Duration::from_secs(60))).ok()?;
        let head = format!(
            "POST /analyze HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        let _ = s.write_all(head.as_bytes());
        let _ = s.write_all(body);
        let mut raw = Vec::new();
        let _ = s.read_to_end(&mut raw);
        let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
        let status: u16 = std::str::from_utf8(&raw[..head_end])
            .ok()?
            .split(' ')
            .nth(1)?
            .parse()
            .ok()?;
        // A 200 must be complete: Content-Length matched by the body.
        if status == 200 {
            let head_text = std::str::from_utf8(&raw[..head_end]).ok()?;
            let advertised: usize = head_text
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))?
                .trim()
                .parse()
                .ok()?;
            if raw.len() - head_end - 4 != advertised {
                return None;
            }
        }
        Some(status)
    })();
    (status.unwrap_or(0), t0.elapsed())
}

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let requests: u64 = flag("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1200);
    let clients: usize = flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(24);
    let workers: usize = flag("--workers")
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
    let queue: usize = flag("--queue").and_then(|v| v.parse().ok()).unwrap_or(64);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_service.json".to_string());
    let store_dir = flag("--store");

    let corpus = build_corpus();
    let sources: Arc<Vec<Vec<u8>>> = Arc::new(
        corpus
            .iter()
            .map(|p| p.source.clone().into_bytes())
            .collect(),
    );
    eprintln!(
        "service_load: {requests} requests, {clients} clients, {workers} workers, \
         queue {queue}, {} corpus programs",
        sources.len()
    );

    let policy = ServicePolicy {
        workers,
        queue_depth: queue,
        read_timeout: Duration::from_secs(30),
        write_timeout: Duration::from_secs(30),
        drain_deadline: Duration::from_secs(60),
        ..ServicePolicy::default()
    };
    let store = store_dir
        .as_ref()
        .map(|dir| Arc::new(Store::open(StoreConfig::new(dir, git_rev()))));
    let deps = ServiceDeps {
        store,
        ..ServiceDeps::default()
    };
    let server = match Server::start("127.0.0.1:0", policy, deps) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("service_load: cannot start server: {e}");
            std::process::exit(1)
        }
    };
    let addr = server.addr();

    let next = Arc::new(AtomicU64::new(0));
    let t_start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let next = Arc::clone(&next);
            let sources = Arc::clone(&sources);
            std::thread::spawn(move || {
                // (status, latency) per request this client issued.
                let mut samples: Vec<(u16, Duration)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        return samples;
                    }
                    let body = &sources[(i as usize) % sources.len()];
                    samples.push(post_analyze(addr, body));
                }
            })
        })
        .collect();
    let mut samples: Vec<(u16, Duration)> = Vec::new();
    for h in handles {
        match h.join() {
            Ok(s) => samples.extend(s),
            Err(_) => {
                eprintln!("service_load: client thread panicked");
                std::process::exit(1)
            }
        }
    }
    let wall = t_start.elapsed();
    let report = server.shutdown();

    let count = |code: u16| samples.iter().filter(|(c, _)| *c == code).count() as u64;
    let ok = count(200);
    let shed = count(429);
    let transport = count(0);
    let other = samples.len() as u64 - ok - shed - transport;
    let mut ok_lat: Vec<Duration> = samples
        .iter()
        .filter(|(c, _)| *c == 200)
        .map(|(_, d)| *d)
        .collect();
    ok_lat.sort();
    let shed_rate = shed as f64 / samples.len().max(1) as f64;

    eprintln!(
        "service_load: {ok} ok, {shed} shed ({:.1}%), {transport} transport, {other} other \
         in {:.2}s ({:.0} req/s); p50 {:.2}ms p99 {:.2}ms",
        shed_rate * 100.0,
        wall.as_secs_f64(),
        samples.len() as f64 / wall.as_secs_f64(),
        ms(percentile(&ok_lat, 0.50)),
        ms(percentile(&ok_lat, 0.99)),
    );

    // Any non-error status outside {200, 429} (or a torn 200) means the
    // daemon broke its contract under load.
    if other > 0 {
        eprintln!("service_load: FAIL: {other} unexpected response status(es)");
        std::process::exit(1)
    }
    if ok == 0 {
        eprintln!("service_load: FAIL: no successful responses");
        std::process::exit(1)
    }
    if !report.clean {
        eprintln!("service_load: FAIL: drain exceeded its deadline");
        std::process::exit(1)
    }

    let mut json = String::from("{\n");
    json.push_str("  \"schema_version\": 3,\n");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"host\": \"{}\",", host_info());
    let _ = writeln!(json, "  \"requests\": {},", samples.len());
    let _ = writeln!(json, "  \"clients\": {clients},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(json, "  \"queue_depth\": {queue},");
    let _ = writeln!(json, "  \"corpus_programs\": {},", sources.len());
    let _ = writeln!(
        json,
        "  \"store\": {},",
        store_dir
            .as_deref()
            .map(|_| "true".to_string())
            .unwrap_or_else(|| "false".to_string())
    );
    let _ = writeln!(
        json,
        "  \"status\": {{\"ok\": {ok}, \"shed\": {shed}, \"transport\": {transport}, \
         \"other\": {other}}},"
    );
    let _ = writeln!(
        json,
        "  \"latency_ms\": {{\"p50\": {:.3}, \"p90\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}},",
        ms(percentile(&ok_lat, 0.50)),
        ms(percentile(&ok_lat, 0.90)),
        ms(percentile(&ok_lat, 0.99)),
        ms(ok_lat.last().copied().unwrap_or_default()),
    );
    let _ = writeln!(json, "  \"shed_rate\": {shed_rate:.4},");
    let _ = writeln!(
        json,
        "  \"throughput_rps\": {:.1},",
        samples.len() as f64 / wall.as_secs_f64()
    );
    let _ = writeln!(json, "  \"wall_s\": {:.3},", wall.as_secs_f64());
    let _ = writeln!(
        json,
        "  \"drain\": {{\"admitted\": {}, \"completed\": {}, \"shed\": {}, \
         \"drained_in_queue\": {}, \"panics\": {}, \"clean\": {}}}",
        report.admitted,
        report.completed,
        report.shed,
        report.drained_in_queue,
        report.panics,
        report.clean
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("service_load: cannot write {out_path}: {e}");
        std::process::exit(1)
    }
    eprintln!("service_load: wrote {out_path}");
}
