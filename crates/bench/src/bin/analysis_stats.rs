//! Analysis-cost regenerator: per-program and per-suite analysis wall
//! time plus the session's memoization statistics, written as
//! `BENCH_analysis.json` (consumed by CI as a build artifact).
//!
//! Usage: `cargo run --release -p padfa-bench --bin analysis_stats
//!         [--jobs N] [--runs N] [--warmup N] [--spawn-threshold N] [--out PATH]`
//!
//! Every program is timed in *interleaved pairs*: each measurement runs
//! `--jobs 1` immediately followed by `--jobs N`, so both sides of a
//! pair see the same allocator state, cache residency, and CPU
//! frequency. `speedup_jobs` is the median of the per-pair ratios —
//! runner-load noise that inflates one pair cancels out of its own
//! ratio instead of polluting a cross-run average. The reported wall
//! times are per-side medians. `--warmup` untimed runs precede each
//! program so the first pair is not cold.

use padfa_core::{
    analyze_program_session, flight, AnalysisSession, Options, StatsSnapshot, Store, StoreConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

struct ProgramCost {
    name: &'static str,
    suite: &'static str,
    procedures: usize,
    loops: usize,
    wall_ms_jobs1: f64,
    wall_ms_jobs_n: f64,
    /// Median of per-pair `wall(jobs=1) / wall(jobs=N)` ratios.
    speedup: f64,
    stats: StatsSnapshot,
}

impl ProgramCost {
    /// Parallel speedup of the intra-/inter-procedure fan-out.
    fn speedup_jobs(&self) -> f64 {
        self.speedup
    }
}

/// Median of a sample set (mean of the two middle elements when even).
fn median(mut v: Vec<f64>) -> f64 {
    if v.is_empty() {
        return 0.0;
    }
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn json_stats(s: &StatsSnapshot) -> String {
    let mut o = String::new();
    let _ = write!(
        o,
        "{{\"hit_rate\": {:.4}, \"hits\": {}, \"misses\": {}, \
         \"sys_empty\": [{}, {}], \"subset\": [{}, {}], \"subtract\": [{}, {}], \
         \"intersect\": [{}, {}], \"union\": [{}, {}], \"project\": [{}, {}], \
         \"implies\": [{}, {}], \
         \"tiers\": {{\"sys_empty\": [{}, {}], \"subset\": [{}, {}], \
         \"intersect\": [{}, {}], \"subtract\": [{}, {}], \"union\": [{}, {}], \
         \"project\": [{}, {}], \"implies\": [{}, {}]}}, \
         \"interned_systems\": {}, \"interned_regions\": {}, \
         \"interned_preds\": {}, \"peak_table_entries\": {}, \"fm_projections\": {}, \
         \"lat_overflow\": {}}}",
        s.hit_rate(),
        s.total_hits(),
        s.total_queries() - s.total_hits(),
        s.sys_empty.hits,
        s.sys_empty.misses,
        s.subset.hits,
        s.subset.misses,
        s.subtract.hits,
        s.subtract.misses,
        s.intersect.hits,
        s.intersect.misses,
        s.union.hits,
        s.union.misses,
        s.project.hits,
        s.project.misses,
        s.implies.hits,
        s.implies.misses,
        s.sys_empty.dense,
        s.sys_empty.general,
        s.subset.dense,
        s.subset.general,
        s.intersect.dense,
        s.intersect.general,
        s.subtract.dense,
        s.subtract.general,
        s.union.dense,
        s.union.general,
        s.project.dense,
        s.project.general,
        s.implies.dense,
        s.implies.general,
        s.interned_systems,
        s.interned_regions,
        s.interned_preds,
        s.peak_table_entries,
        s.fm_projections,
        s.lat_overflow,
    );
    o
}

/// Current git revision (short; `+dirty` when the tree is modified), or
/// `"unknown"` outside a checkout. Stamped into the JSON so benchmark
/// trajectories stay attributable to a revision.
fn git_rev() -> String {
    let out = |args: &[&str]| {
        std::process::Command::new("git")
            .args(args)
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
    };
    match out(&["rev-parse", "--short=12", "HEAD"]).filter(|s| !s.is_empty()) {
        Some(rev) => {
            if out(&["status", "--porcelain"]).map(|s| !s.is_empty()) == Some(true) {
                format!("{rev}+dirty")
            } else {
                rev
            }
        }
        None => "unknown".to_string(),
    }
}

fn host_info() -> String {
    let host = std::env::var("HOSTNAME")
        .or_else(|_| std::env::var("HOST"))
        .unwrap_or_else(|_| "unknown-host".to_string());
    format!(
        "{host} ({} {})",
        std::env::consts::OS,
        std::env::consts::ARCH
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let jobs: usize = flag("--jobs").and_then(|v| v.parse().ok()).unwrap_or(4);
    let runs: usize = flag("--runs").and_then(|v| v.parse().ok()).unwrap_or(3);
    let warmup: usize = flag("--warmup").and_then(|v| v.parse().ok()).unwrap_or(1);
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_analysis.json".to_string());
    let spawn_threshold: u64 = flag("--spawn-threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(padfa_core::DEFAULT_SPAWN_THRESHOLD);

    let corpus = padfa_suite::build_corpus();
    let opts = Options::predicated().with_spawn_threshold(spawn_threshold);
    let mut costs: Vec<ProgramCost> = Vec::new();
    for bench in &corpus {
        let run_once = |j: usize| {
            let sess = AnalysisSession::new(opts.clone()).with_jobs(j);
            let t = Instant::now();
            let _ = analyze_program_session(&bench.program, &sess).expect("analysis failed");
            t.elapsed().as_secs_f64() * 1e3
        };
        for _ in 0..warmup {
            run_once(1);
            run_once(jobs);
        }
        // Interleaved pairs: the ratio inside one pair is robust to the
        // runner-load drift that makes separated A/B walls lie.
        let mut walls1 = Vec::with_capacity(runs);
        let mut walls_n = Vec::with_capacity(runs);
        let mut ratios = Vec::with_capacity(runs);
        for _ in 0..runs.max(1) {
            let a = run_once(1);
            let b = run_once(jobs);
            if b > 0.0 {
                ratios.push(a / b);
            }
            walls1.push(a);
            walls_n.push(b);
        }
        // One more instrumented run at `--jobs N` for the stats
        // snapshot, so scheduler spawn/inline counts and the
        // estimate-vs-actual correlation reflect the parallel
        // configuration being scored. (All counters in the snapshot
        // are jobs-deterministic; only the correlation is
        // timing-derived.)
        let sess = AnalysisSession::new(opts.clone()).with_jobs(jobs);
        let (result, _) = analyze_program_session(&bench.program, &sess).expect("analysis failed");
        costs.push(ProgramCost {
            name: bench.name,
            suite: bench.suite.label(),
            procedures: bench.program.procedures.len(),
            loops: result.loops.len(),
            wall_ms_jobs1: median(walls1),
            wall_ms_jobs_n: median(walls_n),
            speedup: median(ratios),
            stats: result.stats,
        });
    }

    // Persistent-store measurement: one cold corpus pass that populates
    // a fresh store, then a warm pass that replays it from disk. The
    // warm/cold ratio is the headline number for the memo store.
    let store_dir = std::env::temp_dir().join(format!("padfa_bench_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let corpus_pass = |store: &Arc<Store>| -> f64 {
        let t0 = std::time::Instant::now();
        for bench in &corpus {
            let sess = AnalysisSession::new(opts.clone())
                .with_jobs(1)
                .with_store(Arc::clone(store));
            let _ = analyze_program_session(&bench.program, &sess).expect("analysis failed");
        }
        t0.elapsed().as_secs_f64() * 1e3
    };
    let cold_store = Arc::new(Store::open(StoreConfig::new(&store_dir, git_rev())));
    let store_cold_ms = corpus_pass(&cold_store);
    drop(cold_store); // seal the journal
    let warm_store = Arc::new(Store::open(StoreConfig::new(&store_dir, git_rev())));
    let store_warm_ms = corpus_pass(&warm_store);
    let store_stats = warm_store.stats();
    drop(warm_store);
    let _ = std::fs::remove_dir_all(&store_dir);

    // Flight-recorder overhead. A wall-clock A/B of a full corpus pass
    // cannot resolve a 2% budget on a shared runner: interleaved,
    // order-alternating measurements of the same binary swing by +-20%
    // pair to pair, so any wall-derived percentage is runner noise.
    // Instead the gated number is the *attributed* overhead, built from
    // three individually stable quantities: the recorder's direct
    // per-event cost (tight span create/drop loop, enabled minus
    // disabled — the disabled side still pays label formatting and
    // clock reads, so the delta is exactly what the gate controls), the
    // deterministic event volume of one corpus pass (watermark delta),
    // and the corpus wall itself (min of interleaved runs). Raw on/off
    // walls are stamped alongside for reference, but the gate does not
    // read them. The budget is <= 2% (enforced by CI).
    let corpus_wall = || {
        for bench in &corpus {
            let sess = AnalysisSession::new(opts.clone()).with_jobs(1);
            let _ = analyze_program_session(&bench.program, &sess).expect("analysis failed");
        }
    };
    flight::set_enabled(true);
    for _ in 0..warmup {
        corpus_wall();
    }
    let wm0 = flight::watermark();
    corpus_wall();
    let flight_events_per_pass = flight::watermark() - wm0;

    // Direct per-event cost: each span is two ring records (Begin/End).
    let span_spin = |n: u64| -> f64 {
        let t = Instant::now();
        for i in 0..n {
            let mut s = flight::span(flight::EventKind::Loop, format!("L{i}"));
            s.set_value(1);
        }
        t.elapsed().as_secs_f64() * 1e9 / n as f64
    };
    let spins = 100_000;
    span_spin(spins / 10); // warm the ring and the allocator
    let span_on_ns = span_spin(spins);
    flight::set_enabled(false);
    let span_off_ns = span_spin(spins);
    flight::set_enabled(true);
    let ns_per_event = (span_on_ns - span_off_ns).max(0.0) / 2.0;

    let mut on_best = f64::INFINITY;
    let mut off_best = f64::INFINITY;
    for _ in 0..runs.max(3) {
        flight::set_enabled(true);
        let t = Instant::now();
        corpus_wall();
        on_best = on_best.min(t.elapsed().as_secs_f64() * 1e3);
        flight::set_enabled(false);
        let t = Instant::now();
        corpus_wall();
        off_best = off_best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let flight_on_ms = on_best;
    let flight_off_ms = off_best;
    flight::set_enabled(true);
    let flight_attr_ms = flight_events_per_pass as f64 * ns_per_event / 1e6;
    let flight_overhead_pct = if flight_on_ms > 0.0 {
        flight_attr_ms / flight_on_ms * 100.0
    } else {
        0.0
    };

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema_version\": 3,\n");
    let _ = writeln!(json, "  \"git_rev\": \"{}\",", git_rev());
    let _ = writeln!(json, "  \"host\": \"{}\",", host_info());
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"runs\": {runs},");
    let _ = writeln!(json, "  \"warmup\": {warmup},");
    json.push_str("  \"programs\": [\n");
    for (i, c) in costs.iter().enumerate() {
        let sched = &c.stats.sched;
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"suite\": \"{}\", \"procedures\": {}, \"loops\": {}, \
             \"wall_ms_jobs1\": {:.3}, \"wall_ms_jobs{}\": {:.3}, \"speedup_jobs\": {:.2}, \
             \"tier_hit_rate\": {:.4}, \
             \"sched\": {{\"threshold\": {}, \"spawned\": {}, \"inlined\": {}, \
             \"est_corr\": {}}}, \"session\": {}}}",
            c.name,
            c.suite,
            c.procedures,
            c.loops,
            c.wall_ms_jobs1,
            jobs,
            c.wall_ms_jobs_n,
            c.speedup_jobs(),
            c.stats.tier_hit_rate(),
            sched.threshold,
            sched.spawned_total(),
            sched.inlined_total(),
            sched
                .est_corr
                .map_or_else(|| "null".to_string(), |r| format!("{r:.3}")),
            json_stats(&c.stats),
        );
        json.push_str(if i + 1 < costs.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    // Per-suite aggregates.
    let mut suites: Vec<&str> = Vec::new();
    for c in &costs {
        if !suites.contains(&c.suite) {
            suites.push(c.suite);
        }
    }
    json.push_str("  \"suites\": [\n");
    for (i, suite) in suites.iter().enumerate() {
        let members: Vec<&ProgramCost> = costs.iter().filter(|c| c.suite == *suite).collect();
        let wall1: f64 = members.iter().map(|c| c.wall_ms_jobs1).sum();
        let walln: f64 = members.iter().map(|c| c.wall_ms_jobs_n).sum();
        let hits: u64 = members.iter().map(|c| c.stats.total_hits()).sum();
        let queries: u64 = members.iter().map(|c| c.stats.total_queries()).sum();
        let best = members
            .iter()
            .map(|c| c.stats.hit_rate())
            .fold(0.0f64, f64::max);
        let _ = write!(
            json,
            "    {{\"suite\": \"{}\", \"programs\": {}, \"wall_ms_jobs1\": {:.3}, \
             \"wall_ms_jobs{}\": {:.3}, \"speedup_jobs\": {:.2}, \"hit_rate\": {:.4}, \
             \"best_program_hit_rate\": {:.4}}}",
            suite,
            members.len(),
            wall1,
            jobs,
            walln,
            if walln > 0.0 { wall1 / walln } else { 0.0 },
            if queries > 0 {
                hits as f64 / queries as f64
            } else {
                0.0
            },
            best,
        );
        json.push_str(if i + 1 < suites.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");

    let _ = writeln!(
        json,
        "  \"store\": {{\"cold_wall_ms\": {:.3}, \"warm_wall_ms\": {:.3}, \
         \"warm_speedup\": {:.2}, \"warm_hit_rate\": {:.4}, \"warm_hits\": {}, \
         \"warm_misses\": {}, \"entries_loaded\": {}}}",
        store_cold_ms,
        store_warm_ms,
        if store_warm_ms > 0.0 {
            store_cold_ms / store_warm_ms
        } else {
            0.0
        },
        store_stats.hit_rate(),
        store_stats.hits,
        store_stats.misses,
        store_stats.loaded,
    );
    // Re-stamp the store line with a trailing comma for the section
    // that follows.
    json.truncate(json.len() - 1);
    json.push_str(",\n");
    let _ = writeln!(
        json,
        "  \"flight_overhead\": {{\"recorder_on_wall_ms\": {flight_on_ms:.3}, \
         \"recorder_off_wall_ms\": {flight_off_ms:.3}, \
         \"events_per_pass\": {flight_events_per_pass}, \
         \"ns_per_event\": {ns_per_event:.1}, \
         \"attributed_ms\": {flight_attr_ms:.3}, \
         \"overhead_pct\": {flight_overhead_pct:.2}, \"budget_pct\": 2.0}}"
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("analysis_stats: cannot write {out_path}: {e}");
        std::process::exit(1);
    });

    // Human-readable recap on stdout.
    for c in &costs {
        println!(
            "{:<12} {:>7.2} ms (jobs=1) {:>7.2} ms (jobs={jobs})  speedup {:>5.2}x  \
             hit rate {:>5.1}%  dense {:>5.1}%  [{} loops, {} procs]",
            c.name,
            c.wall_ms_jobs1,
            c.wall_ms_jobs_n,
            c.speedup_jobs(),
            c.stats.hit_rate() * 100.0,
            c.stats.tier_hit_rate() * 100.0,
            c.loops,
            c.procedures,
        );
    }
    // Parallelism regressions must be visible in the summary, not only
    // inside the JSON: flag every program the fan-out made slower.
    for c in &costs {
        if c.speedup_jobs() < 0.9 {
            println!(
                "warning: {} regressed under parallelism: speedup {:.2}x at jobs={jobs} (< 0.90x)",
                c.name,
                c.speedup_jobs(),
            );
        }
    }
    let best = costs
        .iter()
        .max_by(|a, b| a.stats.hit_rate().total_cmp(&b.stats.hit_rate()))
        .expect("non-empty corpus");
    println!(
        "store: corpus cold {store_cold_ms:.1} ms, warm {:.1} ms ({:.1}x), \
         warm hit rate {:.1}%",
        store_warm_ms,
        if store_warm_ms > 0.0 {
            store_cold_ms / store_warm_ms
        } else {
            0.0
        },
        store_stats.hit_rate() * 100.0,
    );
    println!(
        "flight: {flight_events_per_pass} events/pass at {ns_per_event:.0} ns/event = \
         {flight_attr_ms:.2} ms attributed over {flight_on_ms:.1} ms corpus wall \
         ({flight_overhead_pct:+.2}% overhead, budget 2%; raw off-wall {flight_off_ms:.1} ms)"
    );
    println!(
        "\nwrote {out_path}; best memo hit rate: {:.1}% ({})",
        best.stats.hit_rate() * 100.0,
        best.name
    );
}
