//! Table 1 regenerator: per-program loop statistics across analysis
//! variants, the ELPD-parallel remainder, and the predicated recovery
//! rate — the paper's headline ">50% by base SUIF" and ">40% of the
//! remaining inherently parallel loops" numbers.
//!
//! Usage: `cargo run --release -p padfa-bench --bin table1 [--no-elpd] [--verify] [--csv PATH]`

use padfa_bench::render_table;
use padfa_suite::stats::{aggregate, program_row, verify_expectations};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let run_elpd = !args.iter().any(|a| a == "--no-elpd");
    let verify = args.iter().any(|a| a == "--verify");
    let csv_path = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1).cloned());

    let corpus = padfa_suite::build_corpus();
    if verify {
        let mut bad = 0;
        for bp in &corpus {
            if let Err(e) = verify_expectations(bp) {
                eprintln!("{e}");
                bad += 1;
            }
        }
        if bad > 0 {
            eprintln!("{bad} program(s) violated expectations");
            std::process::exit(1);
        }
        println!("all hard-loop expectations hold across the corpus");
    }

    let mut rows = Vec::new();
    let mut table = Vec::new();
    let mut last_suite = String::new();
    let push_suite_subtotal = |table: &mut Vec<Vec<String>>, rows: &[_], suite: &str| {
        let suite_rows: Vec<_> = rows
            .iter()
            .filter(|r: &&padfa_suite::stats::ProgramRow| r.suite == suite)
            .cloned()
            .collect();
        if suite_rows.is_empty() {
            return;
        }
        let t = aggregate(&suite_rows);
        table.push(vec![
            format!("({suite})"),
            "".into(),
            t.total_loops.to_string(),
            t.base_par.to_string(),
            t.guarded_par.to_string(),
            t.pred_par.to_string(),
            t.pred_rt.to_string(),
            t.remaining.to_string(),
            t.elpd_parallel.to_string(),
            t.recovered.to_string(),
            format!("{:.0}%", t.recovery_pct()),
            "".into(),
        ]);
    };
    for bp in &corpus {
        let r = program_row(bp, run_elpd);
        if !last_suite.is_empty() && last_suite != r.suite {
            push_suite_subtotal(&mut table, &rows, &last_suite);
        }
        last_suite = r.suite.to_string();
        table.push(vec![
            r.name.to_string(),
            r.suite.to_string(),
            r.total_loops.to_string(),
            r.base_par.to_string(),
            r.guarded_par.to_string(),
            r.pred_par.to_string(),
            r.pred_rt.to_string(),
            r.remaining.to_string(),
            r.elpd_parallel.to_string(),
            r.recovered.to_string(),
            format!("{:.0}%", r.recovery_pct()),
            r.new_outer.to_string(),
        ]);
        rows.push(r);
    }
    push_suite_subtotal(&mut table, &rows, &last_suite);
    let t = aggregate(&rows);
    table.push(vec![
        "TOTAL".into(),
        "".into(),
        t.total_loops.to_string(),
        t.base_par.to_string(),
        t.guarded_par.to_string(),
        t.pred_par.to_string(),
        t.pred_rt.to_string(),
        t.remaining.to_string(),
        t.elpd_parallel.to_string(),
        t.recovered.to_string(),
        format!("{:.0}%", t.recovery_pct()),
        "".into(),
    ]);

    println!(
        "{}",
        render_table(
            &[
                "program",
                "suite",
                "loops",
                "base",
                "guarded",
                "pred",
                "RT",
                "remain",
                "ELPD-par",
                "recov",
                "recov%",
                "new-outer",
            ],
            &table,
        )
    );
    if let Some(path) = csv_path {
        let mut csv = String::from(
            "program,suite,loops,base,guarded,pred,rt,remain,elpd_parallel,recovered,new_outer\n",
        );
        for r in &rows {
            csv.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{}\n",
                r.name,
                r.suite,
                r.total_loops,
                r.base_par,
                r.guarded_par,
                r.pred_par,
                r.pred_rt,
                r.remaining,
                r.elpd_parallel,
                r.recovered,
                r.new_outer,
            ));
        }
        std::fs::write(&path, csv).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        println!("wrote {path}");
    }
    println!(
        "base parallelizes {:.1}% of {} loops; predicated recovers {:.1}% of the {} \
         remaining inherently parallel loops ({} with run-time tests); \
         new outermost loops in {} programs",
        t.base_pct(),
        t.total_loops,
        t.recovery_pct(),
        t.elpd_parallel,
        t.pred_rt,
        t.programs_with_new_outer,
    );
    println!(
        "paper anchors: >4000 loops, base >50%, predicated >40% of remaining \
         inherently parallel, additional outer loops in 9 programs"
    );
}
