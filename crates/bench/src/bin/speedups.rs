//! Speedup figure regenerator: for each of the five improved programs,
//! compute speedup over the sequential run at 1/2/4/8 workers under
//! (a) the base-SUIF parallelization plan and (b) the predicated plan.
//!
//! Speedups use the executor's **simulated time** (critical-path work
//! units with fork/join and private-copy overheads), which is
//! deterministic and independent of the host's CPU count — the paper's
//! testbed was an 8-processor SGI, while this repository must also
//! produce the figure on single-core machines. Pass `--wall` to measure
//! wall-clock time instead (meaningful only on a multi-core host).
//!
//! Paper shape to reproduce: base exploits only inner fine-grain loops
//! (fork/join and copy overhead per invocation can even cause
//! slowdowns); the predicated analysis parallelizes the high-coverage
//! outer loop and wins at every processor count.
//!
//! Usage: `cargo run --release -p padfa-bench --bin speedups [rows cols reps] [--wall]`

use padfa_bench::{median_time, render_table};
use padfa_core::{analyze_program, Options};
use padfa_rt::{run_main, ExecPlan, RunConfig};
use padfa_suite::kernels::{kernel, kernel_args, KERNELS};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let wall = args.iter().any(|a| a == "--wall");
    let nums: Vec<usize> = args.iter().skip(1).filter_map(|s| s.parse().ok()).collect();
    let rows: usize = nums.first().copied().unwrap_or(64);
    let cols: usize = nums.get(1).copied().unwrap_or(400);
    let reps: usize = nums.get(2).copied().unwrap_or(3);
    let workers = [1usize, 2, 4, 8];

    println!(
        "kernel size: rows={rows} cols={cols}; {} speedups\n",
        if wall {
            "wall-clock (median of runs)"
        } else {
            "simulated-time"
        }
    );
    let mut table = Vec::new();
    for spec in KERNELS {
        let prog = kernel(spec.name, rows, cols);
        let kargs = kernel_args(spec.name, rows);

        let seq_run = run_main(&prog, kargs.clone(), &RunConfig::sequential()).unwrap();
        let seq_sim = seq_run.sim_time as f64;
        let seq_wall = median_time(reps, || {
            let r = run_main(&prog, kargs.clone(), &RunConfig::sequential()).unwrap();
            std::hint::black_box(r.total_work);
        });

        for (variant_name, opts) in [("base", Options::base()), ("pred", Options::predicated())] {
            let analysis = analyze_program(&prog, &opts).expect("analysis failed");
            let plan = ExecPlan::from_analysis(&prog, &analysis);
            let mut cells = vec![spec.name.to_string(), variant_name.to_string()];
            for &w in &workers {
                let speedup = if wall {
                    let p = plan.clone();
                    let t = median_time(reps, || {
                        let r = run_main(&prog, kargs.clone(), &RunConfig::parallel(w, p.clone()))
                            .unwrap();
                        std::hint::black_box(r.total_work);
                    });
                    seq_wall.as_secs_f64() / t.as_secs_f64().max(1e-9)
                } else {
                    let r = run_main(&prog, kargs.clone(), &RunConfig::parallel(w, plan.clone()))
                        .unwrap();
                    seq_sim / r.sim_time.max(1) as f64
                };
                cells.push(format!("{speedup:.2}"));
            }
            cells.push(spec.mechanism.to_string());
            table.push(cells);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "program",
                "plan",
                "S(1)",
                "S(2)",
                "S(4)",
                "S(8)",
                "mechanism"
            ],
            &table,
        )
    );
    println!(
        "paper shape: predicated >= base at every worker count, with the gap\n\
         growing with workers for the five improved programs"
    );
}
