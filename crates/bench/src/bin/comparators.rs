//! Run-time-test cost comparison: the paper's derived scalar tests vs.
//! the inspector/executor scheme.
//!
//! The paper: *"An inspector/executor introduces several auxiliary
//! arrays per array possibly involved in a dependence, and run-time
//! overhead on the order of the aggregate size of the arrays"*, whereas
//! predicated data-flow analysis *"derives run-time tests based on
//! values of scalar variables that can be tested prior to loop
//! execution"*.
//!
//! This harness runs the same two-version kernel under (a) the
//! predicated plan (one scalar test per invocation) and (b) the
//! inspector/executor scheme, at growing array sizes, and reports the
//! simulated-time overhead of each relative to an oracle that knows the
//! loop is parallel.
//!
//! Usage: `cargo run --release -p padfa-bench --bin comparators`

use padfa_bench::render_table;
use padfa_core::{analyze_program, Options};
use padfa_ir::parse::parse_program;
use padfa_ir::LoopId;
use padfa_rt::{run_main, ArgValue, ExecPlan, RunConfig};

fn kernel(cols: usize) -> padfa_ir::Program {
    // Figure 1(b) shape scaled by array size; x = 3 at run time keeps
    // both schemes on their parallel path.
    let src = format!(
        "proc main(c: int, x: int) {{
            array help[65];
            array a[64, {cols}];
            for@hot i = 1 to c {{
                if (x > 5) {{ help[i] = a[i, 1] + 1.0; }}
                a[i, 2] = help[i + 1];
                a[i, 3] = a[i, 3] * 0.5 + 1.0;
            }}
        }}"
    );
    parse_program(&src).unwrap()
}

fn main() {
    let workers = 4;
    let mut rows = Vec::new();
    for cols in [8usize, 64, 256, 1024, 4096] {
        let prog = kernel(cols);
        let args = vec![ArgValue::Int(64), ArgValue::Int(3)];

        // Oracle: a plan that simply runs the loop parallel (what a
        // clairvoyant compiler would emit) — the overhead baseline.
        let mut oracle_plan = ExecPlan::sequential();
        oracle_plan.insert(
            LoopId(0),
            padfa_rt::LoopPlan {
                kind: padfa_rt::ParallelKind::Always,
                privatized: vec![],
                reductions: vec![],
            },
        );
        let oracle = run_main(
            &prog,
            args.clone(),
            &RunConfig::parallel(workers, oracle_plan),
        )
        .unwrap()
        .sim_time;

        // Predicated two-version plan.
        let analysis = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
        let plan = ExecPlan::from_analysis(&prog, &analysis);
        let two_version = run_main(&prog, args.clone(), &RunConfig::parallel(workers, plan))
            .unwrap()
            .sim_time;

        // Inspector/executor.
        let cfg = RunConfig {
            inspect: vec![LoopId(0)],
            ..RunConfig::parallel(workers, ExecPlan::sequential())
        };
        let inspected = run_main(&prog, args, &cfg).unwrap().sim_time;

        rows.push(vec![
            format!("64x{cols}"),
            oracle.to_string(),
            two_version.to_string(),
            format!("{:+}", two_version as i64 - oracle as i64),
            inspected.to_string(),
            format!("{:+}", inspected as i64 - oracle as i64),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "arrays",
                "oracle",
                "two-version",
                "test-ovh",
                "inspector",
                "inspector-ovh",
            ],
            &rows,
        )
    );
    println!(
        "paper shape: the derived scalar test costs O(1) per invocation;\n\
         inspector overhead grows with the aggregate array size"
    );
}
