//! Table 2 regenerator: details of the loops newly parallelized by the
//! predicated analysis — coverage (% of sequential execution work),
//! granularity (work per invocation), the classification category, and
//! whether a compile-time result or a run-time test was needed.
//!
//! Loops nested inside other newly parallelized loops have coverage and
//! granularity omitted (SUIF exploits a single level of parallelism),
//! mirroring the paper's table.
//!
//! Usage: `cargo run --release -p padfa-bench --bin table2`

use padfa_bench::render_table;
use padfa_core::{analyze_program, Options, Outcome};
use padfa_rt::{run_main, RunConfig};

fn main() {
    let corpus = padfa_suite::build_corpus();
    let mut rows = Vec::new();
    for bp in &corpus {
        let base = analyze_program(&bp.program, &Options::base()).expect("analysis failed");
        let pred = analyze_program(&bp.program, &Options::predicated()).expect("analysis failed");
        let base_par: Vec<_> = base
            .loops
            .iter()
            .filter(|l| l.parallelized())
            .map(|l| l.id)
            .collect();
        let new: Vec<_> = pred
            .loops
            .iter()
            .filter(|l| l.parallelized() && !base_par.contains(&l.id))
            .collect();
        if new.is_empty() {
            continue;
        }
        // Sequential profile for coverage and granularity.
        let profile = run_main(&bp.program, bp.args.clone(), &RunConfig::sequential())
            .expect("corpus program executes");
        let parents = padfa_ir::visit::loop_parents(&bp.program);
        for report in new {
            // Nested inside another newly parallelized loop?
            let mut nested = false;
            let mut anc = parents.get(&report.id).copied().flatten();
            while let Some(a) = anc {
                if pred
                    .loop_report(a)
                    .map(|r| r.parallelized() && !base_par.contains(&a))
                    .unwrap_or(false)
                {
                    nested = true;
                    break;
                }
                anc = parents.get(&a).copied().flatten();
            }
            let (coverage, granularity) = if nested {
                ("-".to_string(), "-".to_string())
            } else {
                match profile.profile.get(&report.id) {
                    Some(p) if p.invocations > 0 => (
                        format!(
                            "{:.1}%",
                            100.0 * p.work as f64 / profile.total_work.max(1) as f64
                        ),
                        format!("{}", p.work / p.invocations),
                    ),
                    _ => ("0.0%".to_string(), "0".to_string()),
                }
            };
            let (kind, test) = match &report.outcome {
                Outcome::Parallel => ("CT".to_string(), String::new()),
                Outcome::ParallelIf(p) => ("RT".to_string(), format!("{p}")),
                Outcome::Sequential => continue,
            };
            // Category in the style of So/Moon/Hall's classification.
            let m = report.mechanisms;
            let category = if m.extraction && m.runtime_test {
                "BC" // breaking/boundary condition test
            } else if m.runtime_test {
                "CF-RT" // control-flow run-time test
            } else if m.embedding {
                "CF-EMB" // index-dependent control flow, embedded
            } else {
                "CF" // control flow handled at compile time
            };
            let mut label = report
                .label
                .clone()
                .unwrap_or_else(|| format!("L{}", report.id.0));
            label.truncate(12);
            let mut test_short = test;
            if test_short.len() > 44 {
                test_short.truncate(41);
                test_short.push_str("...");
            }
            rows.push(vec![
                bp.name.to_string(),
                label,
                report.depth.to_string(),
                coverage,
                granularity,
                category.to_string(),
                kind,
                if report.privatized.is_empty() {
                    String::new()
                } else {
                    "priv".to_string()
                },
                test_short,
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "program",
                "loop",
                "depth",
                "coverage",
                "gran",
                "category",
                "CT/RT",
                "xform",
                "run-time test",
            ],
            &rows,
        )
    );
    println!("{} newly parallelized loops across the corpus", rows.len());
}
