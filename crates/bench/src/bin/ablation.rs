//! Ablation harness for the design choices DESIGN.md calls out:
//!
//! * K — the bound on guarded pieces per component;
//! * predicate embedding on/off;
//! * predicate extraction on/off;
//! * run-time test derivation on/off;
//! * the run-time test cost budget.
//!
//! Each configuration reports how many corpus loops it parallelizes and
//! how long the analysis takes.
//!
//! Usage: `cargo run --release -p padfa-bench --bin ablation`

use padfa_bench::render_table;
use padfa_core::{analyze_program, Options};
use std::time::Instant;

fn measure(corpus: &[padfa_suite::BenchProgram], opts: &Options) -> (usize, usize, f64) {
    let t = Instant::now();
    let mut parallelized = 0;
    let mut rt = 0;
    for bp in corpus {
        let r = analyze_program(&bp.program, opts).expect("analysis failed");
        parallelized += r.num_parallelized();
        rt += r.num_runtime_tested();
    }
    (parallelized, rt, t.elapsed().as_secs_f64())
}

fn main() {
    let corpus = padfa_suite::build_corpus();
    let total: usize = corpus
        .iter()
        .map(|bp| padfa_ir::visit::count_loops(&bp.program))
        .sum();
    println!("corpus: {} programs, {} loops\n", corpus.len(), total);

    let mut rows = Vec::new();
    let mut push = |name: &str, opts: Options| {
        let (par, rt, secs) = measure(&corpus, &opts);
        rows.push(vec![
            name.to_string(),
            par.to_string(),
            rt.to_string(),
            format!("{:.1}%", 100.0 * par as f64 / total as f64),
            format!("{secs:.2}s"),
        ]);
    };

    push("base", Options::base());
    push("guarded", Options::guarded());
    push("predicated (full)", Options::predicated());

    let mut no_embed = Options::predicated();
    no_embed.embedding = false;
    push("predicated - embedding", no_embed);

    let mut no_extract = Options::predicated();
    no_extract.extraction = false;
    push("predicated - extraction", no_extract);

    let mut no_rt = Options::predicated();
    no_rt.runtime_tests = false;
    push("predicated - run-time tests", no_rt);

    for k in [1usize, 2, 4, 8] {
        let mut o = Options::predicated();
        o.max_pieces = k;
        push(&format!("predicated K={k}"), o);
    }

    for budget in [1u32, 4, 16, 64] {
        let mut o = Options::predicated();
        o.test_cost_budget = budget;
        push(&format!("predicated cost budget={budget}"), o);
    }

    println!(
        "{}",
        render_table(
            &["configuration", "parallelized", "RT", "％loops", "analysis"],
            &rows
        )
    );
}
