//! Minimal, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The build environment has no registry access, so the real crate
//! cannot be fetched; every consumer here only needs a deterministic,
//! seedable pseudo-random stream for test-case and corpus generation,
//! which SplitMix64 provides with far less machinery. The stream
//! differs from upstream `rand`'s, which is fine: nothing in the
//! workspace depends on the exact values, only on determinism per seed.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// SplitMix64 generator under the upstream `StdRng` name.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-9i64..=9);
            assert!((-9..=9).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
