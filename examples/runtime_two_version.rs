//! Two-version loops in action: the same program runs its hot loop in
//! parallel or sequentially depending on the value a run-time test sees
//! at loop entry — the paper's low-cost run-time parallelization test.
//!
//! Run with: `cargo run -p padfa --example runtime_two_version`

use padfa::prelude::*;

fn main() {
    let prog = padfa::suite::fig1::fig1b();
    let result = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let hot = result.by_label("outer").expect("outer loop");
    let Outcome::ParallelIf(test) = &hot.outcome else {
        panic!("expected a two-version loop, got {}", hot.outcome);
    };
    println!("derived run-time test: {test}");
    println!("test cost (atoms): {}\n", test.cost());

    let plan = ExecPlan::from_analysis(&prog, &result);
    for (x, label) in [
        (3, "x = 3 (guard false: no writes, safe)"),
        (9, "x = 9 (guard true: dependence)"),
    ] {
        let args = vec![ArgValue::Int(100), ArgValue::Int(x)];
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let par = run_main(&prog, args, &RunConfig::parallel(4, plan.clone())).unwrap();
        println!("{label}");
        println!(
            "  tests passed: {}  failed: {}  parallel regions: {}",
            par.stats.tests_passed, par.stats.tests_failed, par.stats.parallel_loops
        );
        println!(
            "  result matches sequential oracle: {}",
            if seq.max_abs_diff(&par) == 0.0 {
                "yes"
            } else {
                "NO"
            }
        );
    }
}
