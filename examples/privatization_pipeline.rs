//! Array privatization end-to-end: a workspace array carries
//! cross-iteration write/write conflicts that privatization (with
//! copy-in and ordered last-value merging) removes. Shows the analysis
//! decision, the execution plan, and the verified parallel run.
//!
//! Run with: `cargo run -p padfa --example privatization_pipeline`

use padfa::prelude::*;

fn main() {
    let src = "proc main(n: int) {
        array a[256];
        array work[16];
        var t: real;
        for@pipeline i = 1 to n {
            // Fill the workspace (kills any exposed reads)...
            for j = 1 to 16 { work[j] = a[i] * j + 1.0; }
            // ...use it...
            t = work[1] + work[16];
            // ...and write the result.
            a[i] = t * 0.5;
        }
    }";
    let prog = parse_program(src).unwrap();
    let result = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let report = result.by_label("pipeline").unwrap();

    println!("outcome: {}", report.outcome);
    for p in &report.privatized {
        println!(
            "privatized array: {} (copy-in: {}, copy-out: {})",
            p.array, p.copy_in, p.copy_out
        );
    }
    for s in &report.privatized_scalars {
        println!("privatized scalar: {s}");
    }

    let plan = ExecPlan::from_analysis(&prog, &result);
    let args = vec![ArgValue::Int(256)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
    let par = run_main(&prog, args, &RunConfig::parallel(8, plan)).unwrap();
    println!(
        "\n8-worker run matches sequential oracle: {}",
        if seq.max_abs_diff(&par) == 0.0 {
            "yes"
        } else {
            "NO"
        }
    );
    // Last-value semantics: `work` and `t` hold the final iteration's
    // values, exactly as in the sequential run.
    println!(
        "last-value check: t = {:?} (sequential {:?})",
        par.scalar("t").unwrap(),
        seq.scalar("t").unwrap()
    );
}
