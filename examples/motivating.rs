//! The paper's Figure 1: run all three analysis variants over the four
//! motivating examples and show which mechanism each one needs.
//!
//! Run with: `cargo run -p padfa --example motivating`

use padfa::prelude::*;
use padfa::suite::fig1;

fn main() {
    let cases: Vec<(&str, &str, padfa::ir::Program)> = vec![
        (
            "1(a)",
            "guarded values improve compile-time analysis",
            fig1::fig1a(),
        ),
        (
            "1(b)",
            "a run-time test is derived from guards",
            fig1::fig1b(),
        ),
        (
            "1(c)",
            "predicate embedding (index-dependent guard)",
            fig1::fig1c(),
        ),
        (
            "1(d)",
            "extraction: exposure depends on a symbolic bound",
            fig1::fig1d(),
        ),
        (
            "1(d')",
            "extraction: boundary-condition run-time test",
            fig1::fig1d_runtime(),
        ),
    ];

    for (tag, blurb, prog) in cases {
        println!("Figure {tag} — {blurb}");
        for (name, opts) in [
            ("base", Options::base()),
            ("guarded", Options::guarded()),
            ("predicated", Options::predicated()),
        ] {
            let result = analyze_program(&prog, &opts).expect("analysis failed");
            let outer = result.by_label("outer").expect("outer loop");
            let mut extras = Vec::new();
            if !outer.privatized.is_empty() {
                let names: Vec<String> = outer.privatized.iter().map(|p| p.array.name()).collect();
                extras.push(format!("privatize {}", names.join(",")));
            }
            let m = outer.mechanisms;
            if m.embedding {
                extras.push("embedding".into());
            }
            if m.extraction {
                extras.push("extraction".into());
            }
            println!(
                "  {name:>10}: {}{}",
                outer.outcome,
                if extras.is_empty() {
                    String::new()
                } else {
                    format!("   [{}]", extras.join(", "))
                }
            );
        }
        println!();
    }
}
