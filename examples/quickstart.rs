//! Quickstart: parse a program, run the three analysis variants, plan
//! execution, and verify the parallel run against the sequential oracle.
//!
//! Run with: `cargo run -p padfa --example quickstart`

use padfa::prelude::*;

fn main() {
    let src = "proc main(n: int, x: int) {
        array help[101];
        array a[100, 2];
        var total: real;
        // A loop only predicated analysis parallelizes (two-version).
        for@hot i = 1 to n {
            if (x > 5) { help[i] = a[i, 1]; }
            a[i, 2] = help[i + 1] + i * 0.5;
        }
        // A loop every variant parallelizes.
        for@easy i = 1 to n {
            a[i, 1] = a[i, 1] + 1.0;
        }
        // A reduction.
        for@sum i = 1 to n {
            total = total + a[i, 2];
        }
    }";
    let prog = parse_program(src).expect("program parses");

    println!("== analysis outcomes ==");
    for (name, opts) in [
        ("base SUIF    ", Options::base()),
        ("guarded      ", Options::guarded()),
        ("predicated   ", Options::predicated()),
    ] {
        let result = analyze_program(&prog, &opts).expect("analysis failed");
        let describe = |label: &str| {
            result
                .by_label(label)
                .map(|r| format!("{}", r.outcome))
                .unwrap_or_default()
        };
        println!(
            "{name}: hot = {:<40} easy = {:<10} sum = {}",
            describe("hot"),
            describe("easy"),
            describe("sum"),
        );
    }

    // Execute with the predicated plan at 4 workers; x = 3 keeps the
    // two-version test on its parallel path.
    let result = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let plan = ExecPlan::from_analysis(&prog, &result);
    let args = vec![ArgValue::Int(100), ArgValue::Int(3)];
    let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).expect("sequential run");
    let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).expect("parallel run");

    println!("\n== execution ==");
    println!(
        "parallel regions entered: {}, run-time tests passed: {}",
        par.stats.parallel_loops, par.stats.tests_passed
    );
    println!(
        "max |sequential - parallel| over all state: {:.3e}",
        seq.max_abs_diff(&par)
    );
    println!(
        "total (reduction result): sequential = {:?}, parallel = {:?}",
        seq.scalar("total").unwrap(),
        par.scalar("total").unwrap()
    );
}
