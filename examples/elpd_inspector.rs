//! The ELPD run-time inspector: classify loops the compiler left
//! sequential as independent / privatizable / sequential on a concrete
//! input — the methodology the paper uses to count the *remaining
//! inherently parallel* loops.
//!
//! Run with: `cargo run -p padfa --example elpd_inspector`

use padfa::prelude::*;

fn main() {
    // A loop no static analysis parallelizes (subscript array), whose
    // dynamic behavior depends on the index data.
    let src = "proc main(n: int, idx: array[16] of int) {
        array a[64];
        for@target i = 1 to n {
            a[idx[i]] = a[idx[i]] * 0.5 + 1.0;
        }
    }";
    let prog = parse_program(src).unwrap();

    let result = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
    let report = result.by_label("target").unwrap();
    println!("static verdict (predicated analysis): {}\n", report.outcome);

    let target = report.id;
    for (desc, data) in [
        ("distinct indices 1..16", (1..=16).collect::<Vec<i64>>()),
        ("all indices = 1 (collisions)", vec![1; 16]),
    ] {
        let args = vec![
            ArgValue::Int(16),
            ArgValue::Array(ArrayStore::from_i64(data)),
        ];
        let verdict = elpd_inspect(&prog, args, target, &[]).expect("inspection runs");
        println!("input: {desc}");
        println!(
            "  ELPD: parallelizable = {}, needs privatization = {}, iterations = {}",
            verdict.parallelizable, verdict.needs_privatization, verdict.iterations
        );
        for (array, class) in &verdict.arrays {
            println!("    {array}: {class:?}");
        }
        println!();
    }
    println!(
        "The same loop is inherently parallel on one input and genuinely\n\
         sequential on another — which is why the paper uses ELPD to bound\n\
         what any compile-time technique could hope to parallelize."
    );
}
