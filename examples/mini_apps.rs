//! Three hand-written mini-applications (Jacobi relaxation, a particle
//! push, histogram binning) through the full pipeline: analysis per
//! variant, parallel execution, and verification against the sequential
//! oracle.
//!
//! Run with: `cargo run -p padfa --example mini_apps`

use padfa::prelude::*;
use padfa::suite::apps;

fn main() {
    let cases: Vec<(&str, padfa::ir::Program, Vec<ArgValue>)> = {
        let (jacobi, jargs) = apps::jacobi(24, 200);
        let (push, pargs) = apps::particle_push(512, 8);
        let (hist, hargs) = apps::histogram(1024, 32);
        vec![
            ("jacobi", jacobi, jargs),
            ("particle_push", push, pargs),
            ("histogram", hist, hargs),
        ]
    };

    for (name, prog, args) in cases {
        println!("== {name}");
        let result = analyze_program(&prog, &Options::predicated()).expect("analysis failed");
        for report in &result.loops {
            if report.label.is_some() {
                println!("  {report}");
            }
        }
        let seq = run_main(&prog, args.clone(), &RunConfig::sequential()).unwrap();
        let plan = ExecPlan::from_analysis(&prog, &result);
        let par = run_main(&prog, args, &RunConfig::parallel(4, plan)).unwrap();
        println!(
            "  sequential sim-time {} vs 4-worker {} ({:.2}x); |diff| = {:.2e}; output {:?}",
            seq.sim_time,
            par.sim_time,
            seq.sim_time as f64 / par.sim_time.max(1) as f64,
            seq.max_abs_diff(&par),
            par.printed.first(),
        );
        println!();
    }
}
